"""Property-based tests for the NVM skip list (hypothesis)."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.kvstore.heap import PersistentHeap
from repro.kvstore.sorted_index import SortedIndex
from repro.sim.events import Simulation
from tests.conftest import make_viyojit

PAGE = 4096

keys = st.binary(min_size=1, max_size=20)
operations = st.lists(
    st.tuples(st.sampled_from(["insert", "delete"]), keys, st.integers(1, 10**9)),
    max_size=120,
)


def build_index():
    system = make_viyojit(Simulation(), num_pages=2048, budget=512)
    heap = PersistentHeap(system, system.mmap(512 * PAGE))
    return SortedIndex(system, heap)


@settings(max_examples=40, deadline=None)
@given(ops=operations)
def test_matches_dict_model(ops):
    """The skip list behaves exactly like a sorted dict."""
    index = build_index()
    model = {}
    for action, key, value in ops:
        if action == "insert":
            index.insert(key, value)
            model[key] = value
        else:
            assert index.delete(key) == (key in model)
            model.pop(key, None)
    assert list(index.keys()) == sorted(model)
    assert len(index) == len(model)
    for key, value in model.items():
        assert index.find(key) == value


@settings(max_examples=30, deadline=None)
@given(ops=operations, start=keys, count=st.integers(1, 20))
def test_scan_matches_sorted_slice(ops, start, count):
    """scan(start, k) == the first k model keys >= start, in order."""
    index = build_index()
    model = {}
    for action, key, value in ops:
        if action == "insert":
            index.insert(key, value)
            model[key] = value
        else:
            index.delete(key)
            model.pop(key, None)
    expected = [
        (key, model[key]) for key in sorted(model) if key >= start
    ][:count]
    assert index.scan(start, count) == expected


@settings(max_examples=25, deadline=None)
@given(ops=operations)
def test_find_ge_is_successor(ops):
    index = build_index()
    model = set()
    for action, key, _value in ops:
        if action == "insert":
            index.insert(key, 1)
            model.add(key)
        else:
            index.delete(key)
            model.discard(key)
    for probe in (b"\x00", b"m", b"\xff"):
        node = index.find_ge(probe)
        expected = min((k for k in model if k >= probe), default=None)
        if expected is None:
            assert node is None
        else:
            assert node is not None
            assert index._key_of(node) == expected
