"""End-to-end durability: crash the KV store, recover, compare contents.

This is the reproduction's strongest correctness statement: after an
arbitrary workload under an arbitrary (valid) dirty budget, a power
failure plus battery flush plus recovery reproduces every key-value pair
— parsed from raw recovered bytes, not from any in-DRAM state.
"""

from __future__ import annotations

import random
from typing import Dict

from repro.core.crash import CrashSimulator, viyojit_battery
from repro.kvstore.store import KVStore
from repro.power.power_model import PowerModel
from repro.sim.events import Simulation
from tests.conftest import make_viyojit

PAGE = 4096


def recovered_image(system, crash: CrashSimulator) -> Dict[int, bytes]:
    """The post-recovery memory image: backing store + battery flush."""
    report = crash.power_failure()
    assert report.survives
    durable: Dict[int, bytes] = {}
    for pfn in range(system.region.num_pages):
        data = system.backing.read(pfn)
        if data is not None:
            durable[pfn] = data
    for pfn in system.dirty_pages():
        durable[pfn] = system.region.page_bytes(pfn)
    return durable


def reader_over(image: Dict[int, bytes], page_size: int):
    """A read(addr, size) over a recovered page image (zero-fill gaps)."""

    def read(addr: int, size: int) -> bytes:
        out = bytearray()
        cursor = addr
        remaining = size
        while remaining > 0:
            pfn, offset = divmod(cursor, page_size)
            take = min(remaining, page_size - offset)
            page = image.get(pfn, bytes(page_size))
            out += page[offset : offset + take]
            cursor += take
            remaining -= take
        return bytes(out)

    return read


def run_crash_recovery(budget: int, ops: int, seed: int) -> None:
    system = make_viyojit(Simulation(), num_pages=768, budget=budget)
    store = KVStore(system, num_buckets=128, heap_bytes=256 * PAGE)
    model = PowerModel()
    battery = viyojit_battery(model, budget * PAGE)
    crash = CrashSimulator(system, model, battery)

    rng = random.Random(seed)
    expected: Dict[bytes, bytes] = {}
    for i in range(ops):
        key = b"key%04d" % rng.randrange(200)
        action = rng.random()
        if action < 0.6 or key not in expected:
            value = bytes([rng.randrange(256)]) * rng.randrange(8, 200)
            store.put(key, value)
            expected[key] = value
        elif action < 0.8:
            got = store.get(key)
            assert got == expected[key]
        else:
            store.delete(key)
            expected.pop(key, None)

    image = recovered_image(system, crash)
    read = reader_over(image, system.region.page_size)
    recovered = KVStore.dump_from_reader(
        read, store.header.base_addr, store.buckets.base_addr
    )
    assert recovered == expected


class TestCrashRecovery:
    def test_small_budget(self):
        run_crash_recovery(budget=8, ops=400, seed=1)

    def test_medium_budget(self):
        run_crash_recovery(budget=48, ops=400, seed=2)

    def test_large_budget(self):
        run_crash_recovery(budget=256, ops=400, seed=3)

    def test_write_heavy(self):
        run_crash_recovery(budget=16, ops=800, seed=4)

    def test_crash_mid_run_at_every_hundred_ops(self):
        """Crash consistency is not just an end-of-run property."""
        system = make_viyojit(Simulation(), num_pages=768, budget=12)
        store = KVStore(system, num_buckets=128, heap_bytes=256 * PAGE)
        model = PowerModel()
        crash = CrashSimulator(system, model, viyojit_battery(model, 12 * PAGE))
        rng = random.Random(5)
        expected: Dict[bytes, bytes] = {}
        for i in range(600):
            key = b"key%04d" % rng.randrange(100)
            value = bytes([rng.randrange(256)]) * rng.randrange(8, 100)
            store.put(key, value)
            expected[key] = value
            if i % 100 == 99:
                image = recovered_image(system, crash)
                read = reader_over(image, system.region.page_size)
                recovered = KVStore.dump_from_reader(
                    read, store.header.base_addr, store.buckets.base_addr
                )
                assert recovered == expected, f"divergence after {i + 1} ops"
