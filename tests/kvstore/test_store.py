"""Unit tests for the Redis-like KV store."""

import pytest

from repro.kvstore.store import KVStore, fnv1a
from tests.conftest import make_baseline, make_viyojit

PAGE = 4096


def build_store(sim, viyojit=True, **kwargs):
    if viyojit:
        system = make_viyojit(sim, num_pages=512, budget=128)
    else:
        system = make_baseline(sim, num_pages=512)
    defaults = dict(num_buckets=64, heap_bytes=64 * PAGE)
    defaults.update(kwargs)
    return KVStore(system, **defaults)


class TestFnv:
    def test_deterministic(self):
        assert fnv1a(b"hello") == fnv1a(b"hello")

    def test_spreads(self):
        hashes = {fnv1a(b"key%d" % i) % 64 for i in range(1000)}
        assert len(hashes) > 40  # most buckets hit

    def test_empty(self):
        assert fnv1a(b"") == 0xCBF29CE484222325


class TestPutGet:
    def test_get_missing(self, sim):
        store = build_store(sim)
        assert store.get(b"nope") is None
        assert store.stats.misses == 1

    def test_put_then_get(self, sim):
        store = build_store(sim)
        store.put(b"k", b"value")
        assert store.get(b"k") == b"value"
        assert len(store) == 1

    def test_update_in_place(self, sim):
        store = build_store(sim)
        store.put(b"k", b"aaaa")
        store.put(b"k", b"bbbb")
        assert store.get(b"k") == b"bbbb"
        assert store.stats.inplace_updates == 1
        assert len(store) == 1

    def test_update_with_relocation(self, sim):
        store = build_store(sim)
        store.put(b"k", b"small")
        store.put(b"k", b"x" * 500)  # outgrows the block
        assert store.get(b"k") == b"x" * 500
        assert store.stats.relocations == 1

    def test_shrinking_update(self, sim):
        store = build_store(sim)
        store.put(b"k", b"x" * 500)
        store.put(b"k", b"tiny")
        assert store.get(b"k") == b"tiny"

    def test_many_keys(self, sim):
        store = build_store(sim)
        for i in range(100):
            store.put(b"key%03d" % i, b"val%03d" % i)
        for i in range(100):
            assert store.get(b"key%03d" % i) == b"val%03d" % i
        assert len(store) == 100

    def test_collision_chains(self, sim):
        """With 2 buckets, everything chains; lookups must still work."""
        store = build_store(sim, num_buckets=2)
        for i in range(20):
            store.put(b"c%d" % i, b"v%d" % i)
        for i in range(20):
            assert store.get(b"c%d" % i) == b"v%d" % i
        assert store.stats.chain_steps > 20

    def test_empty_key_rejected(self, sim):
        store = build_store(sim)
        with pytest.raises(ValueError):
            store.put(b"", b"v")
        with pytest.raises(ValueError):
            store.get(b"")


class TestDelete:
    def test_delete_existing(self, sim):
        store = build_store(sim)
        store.put(b"k", b"v")
        assert store.delete(b"k") is True
        assert store.get(b"k") is None
        assert len(store) == 0

    def test_delete_missing(self, sim):
        store = build_store(sim)
        assert store.delete(b"k") is False

    def test_delete_middle_of_chain(self, sim):
        store = build_store(sim, num_buckets=1)
        for i in range(5):
            store.put(b"k%d" % i, b"v%d" % i)
        assert store.delete(b"k2")
        for i in (0, 1, 3, 4):
            assert store.get(b"k%d" % i) == b"v%d" % i

    def test_delete_frees_block(self, sim):
        store = build_store(sim)
        store.put(b"k", b"v")
        live_before = store.heap.live_bytes
        store.delete(b"k")
        assert store.heap.live_bytes < live_before


class TestReadModifyWrite:
    def test_rmw(self, sim):
        store = build_store(sim)
        store.put(b"k", b"abc")
        assert store.read_modify_write(b"k", lambda v: v.upper()) is True
        assert store.get(b"k") == b"ABC"

    def test_rmw_missing(self, sim):
        store = build_store(sim)
        assert store.read_modify_write(b"k", lambda v: v) is False


class TestMetadataChurn:
    def test_reads_dirty_metadata_pages(self, sim):
        """The paper's YCSB-C observation: read-only workloads still
        perform store instructions (Redis-internal metadata)."""
        store = build_store(sim)
        store.put(b"k", b"v")
        system = store.system
        dirty_before = system.stats.pages_dirtied
        for _ in range(50):
            store.get(b"k")
        # Metadata pages got dirtied; the record page did not need to.
        assert system.stats.pages_dirtied >= dirty_before

    def test_metadata_pool_bounded(self, sim):
        store = build_store(sim, metadata_pages=4)
        for i in range(200):
            store.get(b"missing%d" % i)
        meta_pfns = set(
            range(
                store.stats_region.base_page,
                store.stats_region.base_page + store.stats_region.num_pages,
            )
        )
        dirty_meta = meta_pfns & set(store.system.region._pages.keys())
        assert len(dirty_meta) <= 4 + 1


class TestNVMResidency:
    def test_items_walk_nvm(self, sim):
        store = build_store(sim)
        expected = {}
        for i in range(30):
            key, value = b"k%d" % i, b"v%d" % i
            store.put(key, value)
            expected[key] = value
        assert dict(store.items()) == expected

    def test_dump_from_reader_parses_live_image(self, sim):
        store = build_store(sim)
        for i in range(10):
            store.put(b"k%d" % i, b"v%d" % i)
        image = KVStore.dump_from_reader(
            store.system.region.read,
            store.header.base_addr,
            store.buckets.base_addr,
        )
        assert image == dict(store.items())

    def test_dump_rejects_garbage(self, sim):
        store = build_store(sim)
        with pytest.raises(ValueError, match="magic"):
            KVStore.dump_from_reader(
                store.system.region.read,
                store.heap_mapping.base_addr,  # not a header
                store.buckets.base_addr,
            )

    def test_store_on_baseline_system(self, sim):
        store = build_store(sim, viyojit=False)
        store.put(b"k", b"v")
        assert store.get(b"k") == b"v"
