"""Edge-case tests for the KV store: large values, page spanning, churn."""

import random

import pytest

from repro.kvstore.store import KVStore, LRU_OFFSET, RECORD_HEADER
from tests.conftest import make_baseline, make_viyojit

PAGE = 4096


def build_store(sim, **kwargs):
    system = make_viyojit(sim, num_pages=1024, budget=256)
    defaults = dict(num_buckets=64, heap_bytes=256 * PAGE)
    defaults.update(kwargs)
    return KVStore(system, **defaults)


class TestLargeValues:
    def test_value_spanning_pages(self, sim):
        store = build_store(sim)
        value = bytes(range(256)) * 32  # 8 KiB: > one page
        store.put(b"big", value)
        assert store.get(b"big") == value

    def test_many_large_values(self, sim):
        store = build_store(sim)
        for i in range(20):
            store.put(b"big%d" % i, bytes([i]) * 6000)
        for i in range(20):
            assert store.get(b"big%d" % i) == bytes([i]) * 6000

    def test_grow_then_shrink_then_grow(self, sim):
        store = build_store(sim)
        store.put(b"k", b"a" * 10)
        store.put(b"k", b"b" * 3000)
        store.put(b"k", b"c" * 5)
        store.put(b"k", b"d" * 900)
        assert store.get(b"k") == b"d" * 900
        assert len(store) == 1


class TestChurn:
    def test_insert_delete_cycles_reuse_heap(self, sim):
        store = build_store(sim)
        for cycle in range(5):
            for i in range(50):
                store.put(b"c%d" % i, bytes([cycle]) * 100)
            for i in range(0, 50, 2):
                store.delete(b"c%d" % i)
        # Reuse keeps the heap bounded: high-water under 2x live data.
        assert store.heap.used_bytes < 50 * 128 * 3

    def test_interleaved_ops_consistency(self, sim):
        store = build_store(sim)
        rng = random.Random(9)
        model = {}
        for _ in range(500):
            key = b"k%d" % rng.randrange(60)
            action = rng.random()
            if action < 0.5:
                value = bytes([rng.randrange(256)]) * rng.randrange(1, 300)
                store.put(key, value)
                model[key] = value
            elif action < 0.75:
                assert store.get(key) == model.get(key)
            else:
                assert store.delete(key) == (key in model)
                model.pop(key, None)
        assert len(store) == len(model)
        assert dict(store.items()) == model


class TestLRUField:
    def test_lru_refresh_writes_record_page(self, sim):
        store = build_store(sim, lru_update_interval=1)
        store.put(b"k", b"v")
        record, _link = store._find(b"k")
        version_before = int(
            store.system.region.page_version[store.system.region.page_of(record)]
        )
        store.get(b"k")
        version_after = int(
            store.system.region.page_version[store.system.region.page_of(record)]
        )
        assert version_after > version_before

    def test_interval_limits_refreshes(self, sim):
        store = build_store(sim, lru_update_interval=1000)
        store.put(b"k", b"v")
        record, _link = store._find(b"k")
        pfn = store.system.region.page_of(record)
        before = int(store.system.region.page_version[pfn])
        for _ in range(20):
            store.get(b"k")
        after = int(store.system.region.page_version[pfn])
        assert after - before <= 1

    def test_lru_offset_within_header(self):
        assert LRU_OFFSET + 8 == RECORD_HEADER

    def test_interval_validation(self, sim):
        with pytest.raises(ValueError):
            build_store(sim, lru_update_interval=0)


class TestStatsAccounting:
    def test_hit_miss_counts(self, sim):
        store = build_store(sim)
        store.put(b"k", b"v")
        store.get(b"k")
        store.get(b"absent")
        assert store.stats.hits == 1
        assert store.stats.misses == 1

    def test_op_counts(self, sim):
        store = build_store(sim)
        store.put(b"k", b"v")          # insert
        store.put(b"k", b"w")          # update
        store.get(b"k")
        store.read_modify_write(b"k", lambda v: v)
        store.delete(b"k")
        assert store.stats.puts == 2
        assert store.stats.inserts == 1
        assert store.stats.gets == 1
        assert store.stats.rmws == 1
        assert store.stats.deletes == 1

    def test_base_cost_charged_per_op(self, sim):
        store = build_store(sim)
        before = sim.now
        store.get(b"missing")
        assert sim.now - before >= store.base_op_cost_ns


class TestOnBaseline:
    def test_full_workload_on_baseline_system(self, sim):
        system = make_baseline(sim, num_pages=1024)
        store = KVStore(system, num_buckets=32, heap_bytes=128 * PAGE)
        for i in range(50):
            store.put(b"k%d" % i, b"v%d" % i)
        assert dict(store.items()) == {
            b"k%d" % i: b"v%d" % i for i in range(50)
        }
