"""Cluster runner mechanics: routing, planning, leases, CLI.

Covers the parts between the ring and the report: every global op is
served by exactly one shard, leased budgets actually land on the shard
instances (including through ``SweepJob.budget_pages``), reactive
rebalancing follows observed demand, and the ``repro cluster`` CLI
produces the same bytes at any ``--jobs`` count.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.cluster import (
    ClusterGrid,
    ClusterSpec,
    ShardJob,
    plan_cluster,
    probe_demands,
    run_cluster_grid,
    run_shard_job,
    shard_jobs,
)
from repro.parallel.grid import SweepGrid, SweepJob
from repro.parallel.worker import run_sweep_job

SPEC = ClusterSpec(
    shards=3,
    total_budget_fraction=0.2,
    record_count=300,
    operation_count=900,
    epochs=3,
)


def test_every_op_is_served_by_exactly_one_shard():
    """The shard partition is exact: routed ops sum to the global count."""
    plan = plan_cluster(SPEC)
    payloads = [
        run_shard_job(job) for job in shard_jobs([plan])
    ]
    assert (
        sum(p["result"]["routed_ops"] for p in payloads)
        == SPEC.operation_count
    )
    assert (
        sum(p["result"]["ops_executed"] for p in payloads)
        == SPEC.operation_count
    )
    assert (
        sum(p["result"]["records_loaded"] for p in payloads)
        == SPEC.record_count
    )


def test_leased_budget_lands_on_the_shard():
    """A budgeted shard runs at its epoch-0 lease, not a derived budget."""
    plan = plan_cluster(SPEC)
    assert plan.schedules is not None
    job = shard_jobs([plan])[0]
    payload = run_shard_job(job)
    assert payload["result"]["budget_pages"] == plan.schedules[0][0]
    assert payload["result"]["system_kind"] == "viyojit"
    assert payload["result"]["budget_schedule"] == list(plan.schedules[0])


def test_baseline_cluster_runs_full_battery_shards():
    spec = ClusterSpec(
        shards=2,
        total_budget_fraction=None,
        record_count=200,
        operation_count=400,
        epochs=2,
    )
    payload = run_shard_job(shard_jobs([plan_cluster(spec)])[0])
    assert payload["result"]["system_kind"] == "nvdram"
    assert payload["result"]["budget_pages"] is None


def test_reactive_rebalancing_follows_observed_demand():
    """After epoch 0's even split, leases track the prior epoch's skew."""
    plan = plan_cluster(SPEC)
    demands = probe_demands(SPEC, SPEC.ring())
    for epoch in range(1, SPEC.epochs):
        observed = [
            sum(demands[epoch - 1][tenant][shard] for tenant in range(SPEC.tenants))
            for shard in range(SPEC.shards)
        ]
        leases = [lease.pages for lease in plan.leases[epoch]]
        # The most-demanding shard gets the largest lease.
        assert leases.index(max(leases)) == observed.index(max(observed))


def test_sweep_job_budget_pages_threads_through():
    """Satellite fix: SweepJob carries an exact leased page budget."""
    grid = SweepGrid(
        workloads=("YCSB-A",),
        budget_fractions=(0.5,),
        record_count=200,
        operation_count=400,
    )
    base = grid.jobs()[0]
    import dataclasses

    leased = dataclasses.replace(base, budget_pages=37)
    payload = run_sweep_job(leased)
    assert payload["result"]["budget_pages"] == 37
    assert payload["job"]["budget_pages"] == 37
    # Absent the override, as_dict keeps the old SWEEP.json surface.
    assert "budget_pages" not in run_sweep_job(base)["job"]


def test_sweep_job_budget_pages_validation():
    with pytest.raises(ValueError):
        SweepJob(
            index=0,
            workload="YCSB-A",
            budget_fraction=None,
            theta=0.99,
            seed=42,
            record_count=100,
            operation_count=100,
            budget_pages=10,
        )
    with pytest.raises(ValueError):
        SweepJob(
            index=0,
            workload="YCSB-A",
            budget_fraction=0.5,
            theta=0.99,
            seed=42,
            record_count=100,
            operation_count=100,
            budget_pages=0,
        )


def test_degraded_pool_run_passes_sanitized():
    """Mid-run pool degradation shrinks leases; the shards stay within
    budget under the armed SimulationSanitizer (conftest arms it)."""
    spec = ClusterSpec(
        shards=2,
        total_budget_fraction=0.2,
        record_count=200,
        operation_count=600,
        epochs=3,
        pool_degrade=((1, 0.5),),
    )
    plan = plan_cluster(spec)
    assert plan.capacity_schedule[1] < plan.capacity_schedule[0]
    for job in shard_jobs([plan]):
        payload = run_shard_job(job)
        assert payload["result"]["ops_executed"] == payload["result"]["routed_ops"]


def test_plan_cluster_emits_lease_events_when_traced():
    """A live tracer sees the same protocol the report records."""
    from repro.obs.events import BudgetLease, ShardRebalance
    from repro.obs.tracer import RecordingTracer

    tracer = RecordingTracer()
    plan = plan_cluster(SPEC, tracer=tracer)
    rebalances = tracer.events_of(ShardRebalance)
    leases = tracer.events_of(BudgetLease)
    assert len(rebalances) == SPEC.epochs
    assert len(leases) == SPEC.epochs * SPEC.shards
    assert [event.as_dict() for event in rebalances] + [
        event.as_dict() for event in leases
    ] == sorted(plan.events, key=lambda e: (e["type"] != "ShardRebalance"))
    for event in rebalances:
        assert event.leased_pages <= event.capacity_pages


def test_tenant_ops_partition_the_stream():
    spec = ClusterSpec(
        shards=2,
        total_budget_fraction=0.3,
        record_count=200,
        operation_count=400,
        epochs=2,
        tenants=3,
        tenant_quotas=(0.5, 0.25, 0.25),
    )
    payloads = [
        run_shard_job(job) for job in shard_jobs([plan_cluster(spec)])
    ]
    totals = [0, 0, 0]
    for payload in payloads:
        for tenant, count in enumerate(payload["result"]["tenant_ops"]):
            totals[tenant] += count
    assert sum(totals) == spec.operation_count
    assert all(count > 0 for count in totals)


def test_spec_and_job_validation():
    with pytest.raises(ValueError):
        ClusterSpec(shards=0, total_budget_fraction=0.5)
    with pytest.raises(ValueError):
        ClusterSpec(shards=2, total_budget_fraction=-0.1)
    with pytest.raises(ValueError):
        ClusterSpec(shards=2, total_budget_fraction=0.5, workload="nope")
    with pytest.raises(ValueError):
        ClusterSpec(
            shards=2,
            total_budget_fraction=0.5,
            tenants=2,
            tenant_quotas=(1.0,),
        )
    with pytest.raises(ValueError):
        ClusterSpec(
            shards=2, total_budget_fraction=0.5, pool_degrade=((9, 0.5),)
        )
    with pytest.raises(ValueError):
        ShardJob(
            index=0,
            shard=5,
            shards=2,
            vnodes=8,
            ring_seed=17,
            workload="YCSB-A",
            theta=0.99,
            seed=42,
            record_count=100,
            operation_count=100,
            epochs=2,
            tenants=1,
            budget_schedule=None,
        )
    with pytest.raises(ValueError):
        ShardJob(
            index=0,
            shard=0,
            shards=2,
            vnodes=8,
            ring_seed=17,
            workload="YCSB-A",
            theta=0.99,
            seed=42,
            record_count=100,
            operation_count=100,
            epochs=2,
            tenants=1,
            budget_schedule=(10,),  # 1 lease for 2 epochs
        )


def test_grid_expansion_and_round_trip():
    grid = ClusterGrid(
        shard_counts=(1, 4),
        total_budgets_gb=(None, 2.0),
        record_count=100,
        operation_count=200,
    )
    specs = grid.specs()
    assert [spec.shards for spec in specs] == [1, 1, 4, 4]
    assert [spec.total_budget_fraction is None for spec in specs] == [
        True,
        False,
        True,
        False,
    ]
    assert ClusterGrid.from_dict(grid.as_dict()).specs() == specs
    with pytest.raises(ValueError):
        ClusterGrid(shard_counts=())
    with pytest.raises(ValueError):
        ClusterGrid(shard_counts=(2, 2))
    with pytest.raises(ValueError):
        ClusterGrid.from_dict({"bogus_key": 1})


CLUSTER_ARGS = [
    "cluster",
    "--shards", "2",
    "--total-budgets-gb", "2",
    "--records", "200",
    "--ops", "400",
    "--epochs", "2",
]


class TestClusterCommand:
    def test_jobs_1_and_2_write_identical_deterministic_views(
        self, capsys, tmp_path
    ):
        one = tmp_path / "cluster1.json"
        two = tmp_path / "cluster2.json"
        assert main(CLUSTER_ARGS + ["--jobs", "1", "--out", str(one)]) == 0
        assert main(CLUSTER_ARGS + ["--jobs", "2", "--out", str(two)]) == 0
        out = capsys.readouterr().out
        assert "cluster checksum:" in out
        assert "overhead_pct" in out
        first = json.loads(one.read_text())
        second = json.loads(two.read_text())
        first.pop("wall")
        second.pop("wall")
        assert first == second

    def test_strip_wall_writes_the_deterministic_view(self, tmp_path):
        out = tmp_path / "cluster.json"
        argv = CLUSTER_ARGS + ["--out", str(out), "--strip-wall"]
        assert main(argv) == 0
        report = json.loads(out.read_text())
        assert "wall" not in report
        assert report["schema_version"] == 1

    def test_pool_degrade_flag(self, capsys, tmp_path):
        out = tmp_path / "cluster.json"
        argv = CLUSTER_ARGS + [
            "--pool-degrade", "1:0.5",
            "--out", str(out),
            "--strip-wall",
        ]
        assert main(argv) == 0
        report = json.loads(out.read_text())
        run = next(
            r
            for r in report["runs"]
            if r["spec"]["total_budget_fraction"] is not None
        )
        schedule = run["summary"]["pool"]["capacity_schedule"]
        assert schedule[1] < schedule[0]

    def test_list_mentions_cluster(self, capsys):
        assert main(["list"]) == 0
        assert "cluster" in capsys.readouterr().out


def test_run_cluster_grid_rejects_bad_jobs():
    grid = ClusterGrid(
        shard_counts=(1,),
        total_budgets_gb=(2.0,),
        record_count=100,
        operation_count=200,
    )
    with pytest.raises(ValueError):
        run_cluster_grid(grid, jobs=0)
