"""Consistent-hash ring properties (hypothesis).

The classic contracts the cluster's routing rests on: stability under
membership change (adding or removing one shard moves only ~K/N keys and
never reshuffles keys between surviving shards), virtual-node balance,
and seed determinism.
"""

from __future__ import annotations

import hypothesis.strategies as st
import numpy as np
import pytest
from hypothesis import given, settings

from repro.cluster import HashRing
from repro.workloads.ycsb import make_key

KEYS = [make_key(index) for index in range(3_000)]

shard_counts = st.integers(min_value=2, max_value=12)
seeds = st.integers(min_value=0, max_value=2**31)


def test_same_inputs_same_ring():
    one = HashRing(range(5), vnodes=16, seed=7)
    two = HashRing(range(5), vnodes=16, seed=7)
    assert one == two
    assert one.layout_checksum() == two.layout_checksum()
    assert [one.shard_for(key) for key in KEYS[:200]] == [
        two.shard_for(key) for key in KEYS[:200]
    ]


def test_different_seeds_differ():
    assert HashRing(range(5), seed=1) != HashRing(range(5), seed=2)
    assert (
        HashRing(range(5), seed=1).layout_checksum()
        != HashRing(range(5), seed=2).layout_checksum()
    )


def test_vectorized_lookup_matches_scalar():
    ring = HashRing(range(7), vnodes=16, seed=3)
    want = [ring.shard_for(key) for key in KEYS]
    got = ring.shard_for_many(KEYS)
    assert got.tolist() == want


@settings(max_examples=25, deadline=None)
@given(shards=shard_counts, seed=seeds)
def test_adding_a_shard_only_moves_keys_to_it(shards, seed):
    """Keys either stay put or move to the new shard — never sideways."""
    before = HashRing(range(shards), vnodes=16, seed=seed)
    after = before.with_shard(shards)
    old = before.shard_for_many(KEYS)
    new = after.shard_for_many(KEYS)
    moved = old != new
    assert np.all(new[moved] == shards)
    # Roughly K/(N+1) keys move; allow generous slack for a small ring.
    assert moved.sum() <= len(KEYS) * 3.0 / (shards + 1)


@settings(max_examples=25, deadline=None)
@given(shards=shard_counts, seed=seeds)
def test_removing_a_shard_only_moves_its_keys(shards, seed):
    """Keys on surviving shards stay exactly where they were."""
    before = HashRing(range(shards), vnodes=16, seed=seed)
    victim = shards - 1
    after = before.without_shard(victim)
    old = before.shard_for_many(KEYS)
    new = after.shard_for_many(KEYS)
    survivors = old != victim
    assert np.array_equal(old[survivors], new[survivors])
    assert np.all(new != victim)


@settings(max_examples=15, deadline=None)
@given(shards=st.integers(min_value=2, max_value=8), seed=seeds)
def test_virtual_nodes_bound_arc_imbalance(shards, seed):
    """With many vnodes no shard owns a wildly outsized arc."""
    ring = HashRing(range(shards), vnodes=128, seed=seed)
    arcs = ring.arc_fractions()
    assert abs(sum(arcs.values()) - 1.0) < 1e-9
    fair = 1.0 / shards
    for fraction in arcs.values():
        assert fraction < 4.0 * fair
        assert fraction > fair / 8.0


@settings(max_examples=20, deadline=None)
@given(seed=seeds, key_index=st.integers(min_value=0, max_value=10**6))
def test_every_key_routes_to_a_member(seed, key_index):
    ring = HashRing(range(6), vnodes=8, seed=seed)
    assert ring.shard_for(make_key(key_index)) in ring.shard_ids


def test_membership_round_trip():
    ring = HashRing(range(4), vnodes=16, seed=9)
    assert ring.without_shard(2).with_shard(2) == ring


def test_invalid_rings_rejected():
    with pytest.raises(ValueError):
        HashRing([])
    with pytest.raises(ValueError):
        HashRing([1, 1])
    with pytest.raises(ValueError):
        HashRing([-1, 0])
    with pytest.raises(ValueError):
        HashRing([0, 1], vnodes=0)
    with pytest.raises(ValueError):
        HashRing([0, 1]).with_shard(0)
    with pytest.raises(ValueError):
        HashRing([0, 1]).without_shard(5)


def test_wrap_around_is_covered():
    """A hash past the highest point lands on the ring's first point."""
    ring = HashRing(range(3), vnodes=4, seed=11)
    top_owner = ring._owners[0]
    # Any key hashing above the last position must wrap to point 0; the
    # arc accounting already includes that wrap, so total arc is exactly 1.
    assert abs(sum(ring.arc_fractions().values()) - 1.0) < 1e-12
    assert top_owner in ring.shard_ids
