"""Cross-shard determinism: CLUSTER.json is scheduling-independent.

The tentpole claim: the merged report's ``deterministic_view`` is
byte-identical across ``--jobs 1/2/8``, across two same-seed runs, and
across a SIGKILL of a shard worker mid-job — determinism comes from the
jobs being pure functions of their descriptors, not from scheduling.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.cluster import (
    ClusterGrid,
    plan_cluster,
    run_cluster_grid,
    shard_jobs,
)
from repro.cluster.report import checksum, deterministic_view, dumps

GRID = ClusterGrid(
    shard_counts=(2,),
    total_budgets_gb=(None, 2.0),
    record_count=300,
    operation_count=900,
    epochs=3,
)


@pytest.fixture(scope="module")
def serial_report():
    return run_cluster_grid(GRID, jobs=1)


def test_two_workers_match_serial_byte_for_byte(serial_report):
    parallel_report = run_cluster_grid(GRID, jobs=2)
    assert dumps(parallel_report, strip_wall=True) == dumps(
        serial_report, strip_wall=True
    )
    assert (
        parallel_report["checksum_sha256"]
        == serial_report["checksum_sha256"]
    )


def test_eight_workers_match_serial_byte_for_byte(serial_report):
    report = run_cluster_grid(GRID, jobs=8)
    assert dumps(report, strip_wall=True) == dumps(
        serial_report, strip_wall=True
    )


def test_same_seed_reruns_are_identical(serial_report):
    again = run_cluster_grid(GRID, jobs=1)
    assert dumps(again, strip_wall=True) == dumps(
        serial_report, strip_wall=True
    )


def test_compiled_streams_match_generator_byte_for_byte(serial_report):
    """The pre-compilation execution path produces the same bytes.

    ``run_cluster_grid`` now compiles the grid's op stream once and
    shares it with the planner and every shard worker; replaying the
    same grid through the original per-op generators (no stream, no
    ``ops_path``) must merge to an identical report.
    """
    from repro.cluster.report import build_cluster_report
    from repro.cluster.runner import CLUSTER_POOL_ENTRY, run_shard_job
    from repro.parallel.engine import execute_jobs

    plans = [plan_cluster(spec) for spec in GRID.specs()]
    job_list = shard_jobs(plans)
    assert all(job.ops_path is None for job in job_list)
    results, retries, total_wall_s = execute_jobs(
        job_list,
        serial_runner=run_shard_job,
        pool_entry=CLUSTER_POOL_ENTRY,
        jobs=1,
    )
    legacy = build_cluster_report(
        GRID, plans, results, workers=1,
        total_wall_s=total_wall_s, retries=retries,
    )
    assert dumps(legacy, strip_wall=True) == dumps(
        serial_report, strip_wall=True
    )


def test_shard_job_ops_path_is_not_identity():
    plans = [plan_cluster(spec) for spec in GRID.specs()]
    plain = shard_jobs(plans)
    backed = shard_jobs(plans, ops_path="/tmp/cluster.ops")
    for bare, job in zip(plain, backed):
        assert job.ops_path == "/tmp/cluster.ops"
        assert "ops_path" not in job.as_dict()
        assert job.as_dict() == bare.as_dict()


def test_coordinator_probes_each_workload_once(monkeypatch):
    """One grid = one demand probe, however many budgets it sweeps.

    The probe cache memoizes on the stream + ring schedule, so planning
    N budget points and replaying the reference-lease counterfactual
    must all reuse a single streaming pass.
    """
    from repro.cluster import runner as runner_mod

    calls = []
    real_probe = runner_mod._probe

    def counting_probe(spec, rings, stream=None):
        calls.append(spec.total_budget_fraction)
        return real_probe(spec, rings, stream=stream)

    monkeypatch.setattr(runner_mod, "_probe", counting_probe)
    run_cluster_grid(GRID, jobs=1)
    assert len(calls) == 1


def test_different_seed_changes_the_bytes(serial_report):
    other = run_cluster_grid(
        dataclasses.replace(GRID, seed=43), jobs=1
    )
    assert (
        other["checksum_sha256"] != serial_report["checksum_sha256"]
    )


def test_checksum_covers_the_deterministic_view(serial_report):
    import json

    assert checksum(serial_report) == serial_report["checksum_sha256"]
    tampered = json.loads(json.dumps(serial_report))
    tampered["runs"][0]["summary"]["total_ops"] += 1
    assert checksum(tampered) != serial_report["checksum_sha256"]
    assert "wall" not in deterministic_view(serial_report)


def test_killed_shard_worker_is_retried_and_bytes_match(
    serial_report, tmp_path
):
    """SIGKILL a shard worker mid-job: pool rebuilds, bytes unchanged."""
    plans = [plan_cluster(spec) for spec in GRID.specs()]
    jobs = shard_jobs(plans)
    marker = tmp_path / "kill-once"
    doctored = dataclasses.replace(
        jobs[1], fault_kill_once_path=str(marker)
    )
    messages = []
    report = run_cluster_grid(
        GRID,
        jobs=2,
        _job_overrides={1: doctored},
        progress=messages.append,
    )
    assert marker.exists()  # the worker really died mid-job
    assert any("worker process died" in m for m in messages)
    assert report["wall"]["retries"] >= 1
    assert dumps(report, strip_wall=True) == dumps(
        serial_report, strip_wall=True
    )


def test_rebalance_events_are_in_the_deterministic_view(serial_report):
    """The coordinator's lease protocol is part of the pinned bytes."""
    budgeted = [
        run
        for run in serial_report["runs"]
        if run["spec"]["total_budget_fraction"] is not None
    ]
    assert budgeted
    for run in budgeted:
        kinds = [event["type"] for event in run["events"]]
        assert kinds.count("ShardRebalance") == run["spec"]["epochs"]
        assert kinds.count("BudgetLease") == (
            run["spec"]["epochs"] * run["spec"]["shards"]
        )
        # Conservation, as recorded in the report itself.
        for epoch_leases in run["leases"]:
            total = sum(lease["pages"] for lease in epoch_leases)
            assert total <= run["summary"]["pool"]["capacity_schedule"][0]


def test_baseline_runs_plan_no_leases(serial_report):
    baselines = [
        run
        for run in serial_report["runs"]
        if run["spec"]["total_budget_fraction"] is None
    ]
    assert baselines
    for run in baselines:
        assert run["leases"] == []
        assert run["events"] == []
        assert "pool" not in run["summary"]
