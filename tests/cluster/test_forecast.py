"""Demand forecasting and lease hysteresis: units, properties, payoff.

Three layers:

* predictor unit tests (last-epoch echo, EWMA blend arithmetic,
  per-tenant independence, registry validation);
* hypothesis properties for :func:`repro.cluster.rebalancer.damp_grants`
  and the damped pool — voluntary churn never exceeds the cap,
  conservation and tenant-quota isolation hold bit-for-bit, and the
  ``last-epoch`` predictor with damping off reproduces the original
  reactive lease schedule exactly;
* the acceptance experiment — on a skew-shifting workload (hotspot
  rotates at epoch boundaries) the EWMA predictor's summed L1
  misallocation beats the reactive baseline, as reported in
  CLUSTER.json.
"""

from __future__ import annotations

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.bench.runner import PAPER_HEAP_GB
from repro.cluster import (
    BatteryPool,
    ClusterGrid,
    ClusterSpec,
    EwmaPredictor,
    LastEpochPredictor,
    PerTenantEwmaPredictor,
    damp_grants,
    lease_churn,
    make_predictor,
    plan_cluster,
    run_cluster_grid,
)
from repro.cluster.forecast import l1_misallocation, misallocation_series


# -- predictor units -------------------------------------------------------


def test_last_epoch_echoes_latest_observation():
    predictor = LastEpochPredictor(tenants=2, shards=3)
    assert predictor.forecast() == [[0, 0, 0], [0, 0, 0]]
    predictor.observe([[1, 2, 3], [4, 5, 6]])
    assert predictor.forecast() == [[1, 2, 3], [4, 5, 6]]
    predictor.observe([[7, 8, 9], [0, 0, 0]])
    assert predictor.forecast() == [[7, 8, 9], [0, 0, 0]]


def test_ewma_blends_toward_new_observations():
    predictor = EwmaPredictor(tenants=1, shards=2, alpha=0.5)
    predictor.observe([[100, 0]])
    assert predictor.forecast() == [[100.0, 0.0]]  # first obs initializes
    predictor.observe([[0, 100]])
    assert predictor.forecast() == [[50.0, 50.0]]
    predictor.observe([[0, 100]])
    assert predictor.forecast() == [[25.0, 75.0]]


def test_ewma_aggregates_across_tenants():
    predictor = EwmaPredictor(tenants=2, shards=2, alpha=1.0)
    predictor.observe([[10, 0], [0, 30]])
    # Both tenants forecast the same aggregated shard profile.
    assert predictor.forecast() == [[10.0, 30.0], [10.0, 30.0]]


def test_per_tenant_ewma_keeps_tenants_independent():
    predictor = PerTenantEwmaPredictor(tenants=2, shards=2, alpha=1.0)
    predictor.observe([[10, 0], [0, 30]])
    assert predictor.forecast() == [[10.0, 0.0], [0.0, 30.0]]


def test_predictor_registry_and_validation():
    assert isinstance(
        make_predictor("last-epoch", 1, 2), LastEpochPredictor
    )
    assert isinstance(make_predictor("ewma", 1, 2, 0.7), EwmaPredictor)
    assert isinstance(
        make_predictor("per-tenant-ewma", 2, 2), PerTenantEwmaPredictor
    )
    with pytest.raises(ValueError):
        make_predictor("oracle", 1, 2)
    with pytest.raises(ValueError):
        EwmaPredictor(tenants=1, shards=2, alpha=0.0)
    with pytest.raises(ValueError):
        EwmaPredictor(tenants=1, shards=2, alpha=1.5)
    predictor = LastEpochPredictor(tenants=2, shards=2)
    with pytest.raises(ValueError):
        predictor.observe([[1, 2]])  # wrong tenant count


def test_misallocation_helpers_validate():
    assert l1_misallocation([3, 5], [5, 3]) == 4
    with pytest.raises(ValueError):
        l1_misallocation([1], [1, 2])
    with pytest.raises(ValueError):
        misallocation_series([[1]], [[[1]]], [1, 2], (1.0,), 1)


# -- damping properties ----------------------------------------------------

grant_vectors = st.integers(min_value=2, max_value=8).flatmap(
    lambda n: st.tuples(
        st.lists(
            st.integers(min_value=0, max_value=500), min_size=n, max_size=n
        ),
        st.lists(
            st.integers(min_value=0, max_value=500), min_size=n, max_size=n
        ),
    )
)


@settings(max_examples=120, deadline=None)
@given(vectors=grant_vectors, cap=st.integers(min_value=0, max_value=300))
def test_damp_grants_preserves_totals_and_caps_churn(vectors, cap):
    previous, target = vectors
    damped = damp_grants(previous, target, cap)
    # Conservation: the tenant's grant total is exactly the plan's.
    assert sum(damped) == sum(target)
    assert all(pages >= 0 for pages in damped)
    # Voluntary churn (matched grow/shed) never exceeds the cap.
    churn = lease_churn(previous, damped)
    assert churn.moved <= cap


@settings(max_examples=60, deadline=None)
@given(vectors=grant_vectors)
def test_damp_grants_with_loose_cap_is_identity(vectors):
    previous, target = vectors
    loose = sum(previous) + sum(target) + 1
    assert damp_grants(previous, target, loose) == list(target)


@settings(max_examples=60, deadline=None)
@given(
    shards=st.integers(min_value=2, max_value=6),
    capacity=st.integers(min_value=40, max_value=400),
    cap=st.integers(min_value=0, max_value=30),
    seedling=st.randoms(use_true_random=False),
)
def test_damped_pool_respects_cap_conservation_and_quotas(
    shards, capacity, cap, seedling
):
    """End-to-end: a damped pool's lease vectors obey every invariant."""
    quotas = (0.6, 0.4)
    pool = BatteryPool(
        capacity_pages=capacity,
        shards=shards,
        tenant_quotas=quotas,
        floor_pages=1,
        churn_cap_pages=cap,
    )
    undamped = BatteryPool(
        capacity_pages=capacity,
        shards=shards,
        tenant_quotas=quotas,
        floor_pages=1,
    )
    for epoch in range(4):
        demands = [
            [seedling.randrange(0, 200) for _ in range(shards)]
            for _ in range(2)
        ]
        leases = pool.rebalance(demands, epoch)
        reference = undamped.rebalance(demands, epoch)
        # Conservation matches the undamped plan's total exactly.
        assert sum(lease.pages for lease in leases) == sum(
            ref.pages for ref in reference
        )
        # Tenant isolation: damping moves pages within a tenant, never
        # between tenants.
        assert pool.tenant_leased_pages(epoch) == tuple(
            undamped.tenant_leased_pages(epoch)
        )
        if epoch > 0:
            churn = pool.churn(epoch)
            assert churn.moved <= cap


@settings(max_examples=20, deadline=None)
@given(
    shards=st.integers(min_value=1, max_value=4),
    seed=st.integers(min_value=1, max_value=10**6),
)
def test_last_epoch_undamped_matches_reactive_replay(shards, seed):
    """The default planner is byte-for-byte the original reactive one."""
    spec = ClusterSpec(
        shards=shards,
        total_budget_fraction=2.0 / PAPER_HEAP_GB,
        record_count=120,
        operation_count=240,
        epochs=3,
        seed=seed,
    )
    assert spec.is_legacy()
    plan = plan_cluster(spec)
    # Hand-rolled reactive replay: epoch 0 even split, epoch e from the
    # demand observed during epoch e-1 (the pre-forecasting protocol).
    pool = BatteryPool(
        capacity_pages=spec.pool_capacity_pages(),
        shards=shards,
        floor_pages=spec.floor_pages,
    )
    demands = plan.demands
    replayed = []
    for epoch in range(spec.epochs):
        observed = (
            demands[epoch - 1]
            if epoch > 0
            else [[0] * shards]
        )
        replayed.append(
            [lease.pages for lease in pool.rebalance(observed, epoch)]
        )
    assert [
        [lease.pages for lease in epoch_leases]
        for epoch_leases in plan.leases
    ] == replayed
    assert plan.misallocation is None  # legacy plans report no new keys


# -- the acceptance experiment ---------------------------------------------

SKEW_SHIFT = dict(
    shard_counts=(4,),
    total_budgets_gb=(6.0,),
    record_count=600,
    operation_count=2_400,
    epochs=6,
    hotspot_rotate_keys=200,
)


@pytest.fixture(scope="module")
def skew_shift_reports():
    return {
        predictor: run_cluster_grid(
            ClusterGrid(predictor=predictor, **SKEW_SHIFT), jobs=2
        )
        for predictor in ("last-epoch", "ewma")
    }


def test_ewma_beats_last_epoch_under_shifting_skew(skew_shift_reports):
    """The headline claim, read out of CLUSTER.json itself."""
    reactive = skew_shift_reports["last-epoch"]["runs"][0]["summary"][
        "misallocation"
    ]
    ewma = skew_shift_reports["ewma"]["runs"][0]["summary"][
        "misallocation"
    ]
    # Both arms score against the same reactive baseline replay.
    assert reactive["total"] == reactive["baseline_last_epoch"]["total"]
    assert ewma["baseline_last_epoch"]["total"] == reactive["total"]
    assert ewma["total"] < reactive["total"]
    assert ewma["improvement_pct"] > 0
    assert len(ewma["per_epoch"]) == SKEW_SHIFT["epochs"]


def test_misallocation_block_is_complete(skew_shift_reports):
    block = skew_shift_reports["ewma"]["runs"][0]["summary"][
        "misallocation"
    ]
    assert block["predictor"] == "ewma"
    assert block["total"] == sum(block["per_epoch"])
    assert all(value >= 0 for value in block["per_epoch"])


def test_rotation_alone_emits_churn_block(skew_shift_reports):
    """Modern runs report grown and shed separately (the churn bugfix)."""
    pool = skew_shift_reports["last-epoch"]["runs"][0]["summary"]["pool"]
    churn = pool["churn"]
    epochs = SKEW_SHIFT["epochs"]
    assert len(churn["grown_per_epoch"]) == epochs
    assert len(churn["shed_per_epoch"]) == epochs
    for grown, shed, moved in zip(
        churn["grown_per_epoch"],
        churn["shed_per_epoch"],
        churn["moved_per_epoch"],
    ):
        assert moved == min(grown, shed)
    # Without degradation the pool total is constant, so both sides of
    # every epoch's movement must match.
    assert churn["grown_per_epoch"] == churn["shed_per_epoch"]


def test_degradation_shed_exceeds_grown():
    """The undercount satellite: shed captures drain work grown misses."""
    grid = ClusterGrid(
        shard_counts=(2,),
        total_budgets_gb=(6.0,),
        record_count=300,
        operation_count=900,
        epochs=3,
        pool_degrade=((1, 0.5),),
        predictor="ewma",  # any non-legacy knob turns the block on
    )
    report = run_cluster_grid(grid, jobs=1)
    summary = report["runs"][0]["summary"]
    churn = summary["pool"]["churn"]
    drop = (
        summary["pool"]["capacity_schedule"][0]
        - summary["pool"]["capacity_schedule"][1]
    )
    assert drop > 0
    # Entering the degradation epoch: shed = grown + capacity lost.
    assert churn["shed_per_epoch"][1] == churn["grown_per_epoch"][1] + drop
    assert churn["total_shed_pages"] >= churn["total_grown_pages"] + drop
    # The legacy one-number view still reports the grown side.
    assert (
        summary["pool"]["moved_per_epoch"][1]
        == churn["grown_per_epoch"][1]
    )


def test_damped_run_reports_capped_churn():
    grid = ClusterGrid(
        shard_counts=(4,),
        total_budgets_gb=(6.0,),
        record_count=600,
        operation_count=2_400,
        epochs=6,
        hotspot_rotate_keys=200,
        churn_cap_pages=3,
    )
    report = run_cluster_grid(grid, jobs=1)
    churn = report["runs"][0]["summary"]["pool"]["churn"]
    assert all(moved <= 3 for moved in churn["moved_per_epoch"])
    assert max(churn["moved_per_epoch"]) > 0  # the cap actually binds


def test_demand_starved_run_flags_every_starved_epoch():
    """ops < epochs leaves whole segments empty: the even-split fallback
    must surface as an explicit DemandStarved condition, not silently."""
    grid = ClusterGrid(
        shard_counts=(2,),
        total_budgets_gb=(2.0,),
        record_count=50,
        operation_count=3,
        epochs=5,
    )
    report = run_cluster_grid(grid, jobs=1)
    run = report["runs"][0]
    starved = run["summary"]["pool"]["demand_starved"]
    assert starved, "empty epochs must be flagged"
    for record in starved:
        assert 0 < record["epoch"] < 5
        assert record["tenant"] == 0
    starved_events = [
        event for event in run["events"] if event["type"] == "DemandStarved"
    ]
    assert [
        {"epoch": event["epoch"], "tenant": event["tenant"]}
        for event in starved_events
    ] == starved


def test_duplicate_pool_degrade_epochs_rejected():
    with pytest.raises(ValueError, match="duplicate pool_degrade epoch"):
        ClusterSpec(
            shards=2,
            total_budget_fraction=0.1,
            epochs=4,
            pool_degrade=((1, 0.2), (1, 0.3)),
        )
