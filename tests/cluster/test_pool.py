"""Battery-pool conservation and apportionment properties (hypothesis).

The fleet-wide safety invariant: at every rebalance epoch the pages
leased out never exceed the pool's (possibly degraded) capacity — the
cluster analogue of the paper's "battery flushes every dirty page"
guarantee — plus tenant-quota isolation and largest-remainder exactness.
"""

from __future__ import annotations

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.cluster import BatteryPool, PoolError, apportion, plan_epoch
from repro.cluster.rebalancer import lease_churn, moved_pages
from repro.power.battery import Battery
from repro.power.power_model import PowerModel

weights = st.lists(
    st.floats(min_value=0, max_value=1e6, allow_nan=False), min_size=1, max_size=12
)
demand_rows = st.lists(st.integers(min_value=0, max_value=10**6), min_size=1, max_size=8)


@settings(max_examples=60, deadline=None)
@given(total=st.integers(min_value=0, max_value=10**6), w=weights)
def test_apportion_sums_exactly(total, w):
    grants = apportion(total, w)
    assert sum(grants) == total
    assert all(grant >= 0 for grant in grants)


@settings(max_examples=40, deadline=None)
@given(total=st.integers(min_value=0, max_value=10**6), w=weights)
def test_apportion_is_deterministic(total, w):
    assert apportion(total, w) == apportion(total, w)


@settings(max_examples=40, deadline=None)
@given(
    per=st.integers(min_value=0, max_value=1000),
    n=st.integers(min_value=1, max_value=10),
)
def test_apportion_even_split_on_equal_weights(per, n):
    grants = apportion(per * n, [1.0] * n)
    assert grants == [per] * n


def test_apportion_respects_floor_and_validates():
    assert apportion(10, [0, 0, 0], floor=2) == [4, 3, 3]
    with pytest.raises(ValueError):
        apportion(5, [1, 1, 1], floor=2)
    with pytest.raises(ValueError):
        apportion(5, [])
    with pytest.raises(ValueError):
        apportion(5, [1, -1])


epoch_demand_streams = st.lists(
    st.lists(st.integers(min_value=0, max_value=10**5), min_size=4, max_size=4),
    min_size=1,
    max_size=6,
)


@settings(max_examples=40, deadline=None)
@given(
    capacity=st.integers(min_value=4, max_value=10**6),
    stream=epoch_demand_streams,
    degrade_at=st.integers(min_value=0, max_value=5),
    fraction=st.floats(min_value=0.0, max_value=0.9, exclude_min=True),
)
def test_conservation_at_every_epoch(capacity, stream, degrade_at, fraction):
    """sum(leases) <= capacity holds each epoch, degradation included."""
    pool = BatteryPool(capacity_pages=capacity, shards=4)
    for epoch, demand in enumerate(stream):
        if epoch == degrade_at:
            pool.degrade(fraction)
        leases = pool.rebalance([demand], epoch)
        assert sum(lease.pages for lease in leases) <= pool.capacity_pages
        assert pool.leased_pages(epoch) <= pool.capacity_pages
        assert all(lease.pages >= pool.floor_pages for lease in leases)


@settings(max_examples=30, deadline=None)
@given(
    capacity=st.integers(min_value=100, max_value=10**6),
    demand=st.lists(
        st.integers(min_value=0, max_value=10**5), min_size=3, max_size=3
    ),
)
def test_tenant_quota_isolation(capacity, demand):
    """One tenant's burst cannot eat another tenant's quota share."""
    quotas = (0.5, 0.3, 0.2)
    pool = BatteryPool(
        capacity_pages=capacity, shards=3, tenant_quotas=quotas
    )
    # Tenant 0 bursts; tenants 1 and 2 are idle.
    pool.rebalance([demand, [0, 0, 0], [0, 0, 0]], 0)
    distributable = pool.capacity_pages - pool.shards * pool.floor_pages
    granted = pool.tenant_leased_pages(0)
    for tenant, quota in enumerate(quotas):
        # Largest-remainder rounding can add at most one page per tenant.
        assert granted[tenant] <= int(distributable * quota) + 1


def test_degradation_shrinks_toward_floor_not_zero():
    pool = BatteryPool(capacity_pages=1000, shards=4)
    pool.degrade(0.999999)
    assert pool.capacity_pages == 4 * pool.floor_pages
    leases = pool.rebalance([[10, 0, 0, 0]], 0)
    assert all(lease.pages >= 1 for lease in leases)


def test_epochs_must_lease_in_order():
    pool = BatteryPool(capacity_pages=100, shards=2)
    pool.rebalance([[1, 1]], 0)
    with pytest.raises(PoolError):
        pool.rebalance([[1, 1]], 0)
    with pytest.raises(PoolError):
        pool.rebalance([[1, 1]], 5)


def test_pool_validation():
    with pytest.raises(PoolError):
        BatteryPool(capacity_pages=3, shards=4)
    with pytest.raises(PoolError):
        BatteryPool(capacity_pages=100, shards=0)
    with pytest.raises(PoolError):
        BatteryPool(capacity_pages=100, shards=2, tenant_quotas=(0.5, 0.4))
    with pytest.raises(PoolError):
        BatteryPool(capacity_pages=100, shards=2, tenant_quotas=(1.5, -0.5))
    with pytest.raises(PoolError):
        BatteryPool(capacity_pages=100, shards=2).degrade(1.0)


def test_from_battery_matches_single_machine_sizing():
    """The pool uses the paper's section-5.1 arithmetic, fleet-wide."""
    battery = Battery(nominal_joules=50_000.0)
    model = PowerModel()
    pool = BatteryPool.from_battery(battery, model, shards=4)
    assert (
        pool.nominal_capacity_pages
        == model.dirty_budget_pages(battery, 4096)
    )


def test_schedules_and_moved_pages():
    pool = BatteryPool(capacity_pages=100, shards=2)
    pool.rebalance([[0, 0]], 0)  # even split: 50/50
    pool.rebalance([[3, 1]], 1)  # skewed toward shard 0
    schedules = pool.schedules()
    assert len(schedules) == 2
    assert schedules[0][0] == 50 and schedules[1][0] == 50
    assert schedules[0][1] > schedules[1][1]
    assert pool.moved_pages(0) == 0
    assert pool.moved_pages(1) == schedules[0][1] - 50


def test_moved_pages_helper():
    assert moved_pages([5, 5], [7, 3]) == 2
    assert moved_pages([5, 5], [5, 5]) == 0
    with pytest.raises(ValueError):
        moved_pages([1], [1, 2])


def test_plan_epoch_leases_sum_to_capacity():
    grants, leases = plan_epoch(101, [[5, 0, 2]], (1.0,), 1)
    assert sum(leases) == 101
    assert all(lease >= 1 for lease in leases)
    assert sum(sum(row) for row in grants) == 101 - 3


def test_plan_epoch_masks_inactive_shards_to_the_floor():
    grants, leases = plan_epoch(
        100, [[5, 5, 5]], (1.0,), 1, active=(True, False, True)
    )
    assert leases[1] == 1  # inactive shard keeps exactly its floor
    assert grants[0][1] == 0
    assert sum(leases) == 100  # capacity still fully apportioned
    # The even-split fallback also spreads over active shards only.
    _, fallback = plan_epoch(
        101, [[0, 0, 0]], (1.0,), 1, active=(True, False, True)
    )
    assert fallback[1] == 1
    assert fallback[0] + fallback[2] == 100
    with pytest.raises(ValueError):
        plan_epoch(100, [[1, 1]], (1.0,), 1, active=(False, False))
    with pytest.raises(ValueError):
        plan_epoch(100, [[1, 1]], (1.0,), 1, active=(True,))


def test_lease_churn_separates_grown_from_shed():
    churn = lease_churn([10, 10, 10], [14, 6, 4])
    assert churn.grown == 4
    assert churn.shed == 10  # degradation epoch: 6 pages left the pool
    assert churn.moved == 4
    assert churn.as_dict() == {"grown": 4, "shed": 10, "moved": 4}
    # The one-number helper keeps its historical grown-side meaning.
    assert moved_pages([10, 10, 10], [14, 6, 4]) == 4


def test_pool_churn_accounting_across_degradation():
    pool = BatteryPool(capacity_pages=100, shards=2)
    pool.rebalance([[1, 1]], 0)
    pool.degrade(0.5)
    pool.rebalance([[1, 1]], 1)
    churn = pool.churn(1)
    assert churn.shed == churn.grown + 50  # the lost capacity is drained
    assert pool.churn(0).as_dict() == {"grown": 0, "shed": 0, "moved": 0}


def test_pool_rejects_negative_churn_cap():
    with pytest.raises(PoolError):
        BatteryPool(capacity_pages=100, shards=2, churn_cap_pages=-1)
