"""Shard migration on ring membership change: deltas, handoff, bytes.

Covers the migration tentpole end to end: membership-schedule
validation, the ring's moved-arc/moved-key computation (checked against
brute force), the coordinator's migration and budget-handoff planning,
the workers' ownership-handoff replay, and byte-identity of migration
runs across ``--jobs`` counts, reruns, and a SIGKILLed shard worker.
"""

from __future__ import annotations

import dataclasses

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.cluster import (
    ClusterGrid,
    ClusterSpec,
    HashRing,
    ShardJob,
    membership_rings,
    plan_cluster,
    run_cluster_grid,
    shard_jobs,
)
from repro.cluster.ring import RING_SIZE
from repro.cluster.report import dumps

# -- membership-schedule validation ----------------------------------------


def _spec(membership, shards=2, epochs=4):
    return ClusterSpec(
        shards=shards,
        total_budget_fraction=0.1,
        record_count=100,
        operation_count=200,
        epochs=epochs,
        membership=membership,
    )


def test_membership_validation_rejects_bad_schedules():
    with pytest.raises(ValueError, match="epoch 0 outside"):
        _spec(((0, "add", 2),))
    with pytest.raises(ValueError, match="outside"):
        _spec(((4, "add", 2),))
    with pytest.raises(ValueError, match="must be one of"):
        _spec(((1, "join", 2),))
    with pytest.raises(ValueError, match="dense"):
        _spec(((1, "add", 5),))
    with pytest.raises(ValueError, match="not on the ring"):
        _spec(((1, "remove", 7),))
    with pytest.raises(ValueError, match="not on the ring"):
        _spec(((1, "remove", 0), (2, "remove", 0)))
    with pytest.raises(ValueError, match="empty"):
        _spec(((1, "remove", 0), (2, "remove", 1)))


def test_membership_schedule_is_sorted_by_epoch():
    spec = _spec(((3, "remove", 0), (1, "add", 2)))
    assert spec.membership == ((1, "add", 2), (3, "remove", 0))
    assert spec.total_shards() == 3
    assert spec.active(0) == (True, True, False)
    assert spec.active(1) == (True, True, True)
    assert spec.active(3) == (False, True, True)


def test_membership_rings_reuse_unchanged_epochs():
    rings = membership_rings(
        2, vnodes=16, ring_seed=17, membership=((2, "add", 2),), epochs=4
    )
    assert rings[0] is rings[1]
    assert rings[1] is not rings[2]
    assert rings[2] is rings[3]
    assert rings[2].shard_ids == (0, 1, 2)


def test_shard_job_accepts_added_shard_ids_only_with_membership():
    kwargs = dict(
        index=0,
        shards=2,
        vnodes=16,
        ring_seed=17,
        workload="YCSB-A",
        theta=0.99,
        seed=42,
        record_count=100,
        operation_count=200,
        epochs=4,
        tenants=1,
        budget_schedule=None,
    )
    with pytest.raises(ValueError, match="outside"):
        ShardJob(shard=2, **kwargs)
    job = ShardJob(shard=2, membership=((1, "add", 2),), **kwargs)
    assert job.as_dict()["membership"] == [[1, "add", 2]]
    legacy = ShardJob(shard=1, **kwargs)
    assert "membership" not in legacy.as_dict()


# -- ring membership deltas ------------------------------------------------

ring_params = st.tuples(
    st.integers(min_value=2, max_value=6),  # shards
    st.integers(min_value=4, max_value=24),  # vnodes
    st.integers(min_value=0, max_value=10**6),  # seed
)


@settings(max_examples=25, deadline=None)
@given(params=ring_params, probes=st.lists(
    st.integers(min_value=0, max_value=RING_SIZE - 1),
    min_size=20,
    max_size=20,
))
def test_diff_arcs_partition_matches_pointwise_ownership(params, probes):
    shards, vnodes, seed = params
    ring = HashRing(range(shards), vnodes=vnodes, seed=seed)
    other = ring.with_shard(shards)
    arcs = ring.diff_arcs(other)
    # Arcs are sorted, disjoint, non-empty, owner-differing, and merged.
    previous_end = 0
    previous_pair = None
    for start, end, mine, theirs in arcs:
        assert 0 <= start < end <= RING_SIZE
        assert start >= previous_end
        assert mine != theirs
        if start == previous_end:
            assert (mine, theirs) != previous_pair
        previous_end = end
        previous_pair = (mine, theirs)
        # Adding a shard only moves keys TO the new shard.
        assert theirs == shards
    # Pointwise: a hash position changed owner iff it lies in some arc.
    for position in probes:
        in_arc = any(start <= position < end for start, end, _, _ in arcs)
        changed = ring._owner_at(position) != other._owner_at(position)
        assert in_arc == changed


@settings(max_examples=25, deadline=None)
@given(params=ring_params)
def test_removal_moves_only_the_removed_shards_arcs(params):
    shards, vnodes, seed = params
    ring = HashRing(range(shards), vnodes=vnodes, seed=seed)
    other = ring.without_shard(0)
    for _, _, mine, theirs in ring.diff_arcs(other):
        assert mine == 0  # only the removed shard's keyspace moves
        assert theirs != 0
    fraction = ring.moved_arc_fraction(other)
    assert 0 < fraction < 1
    # Symmetric view: the same arcs, owners swapped.
    assert other.moved_arc_fraction(ring) == fraction


@settings(max_examples=15, deadline=None)
@given(params=ring_params, seed2=st.integers(min_value=0, max_value=10**6))
def test_moved_keys_agrees_with_per_key_routing(params, seed2):
    shards, vnodes, seed = params
    ring = HashRing(range(shards), vnodes=vnodes, seed=seed)
    other = ring.with_shard(shards)
    keys = [b"user%020d" % index for index in range(seed2 % 50 + 10)]
    moved = ring.moved_keys(other, keys)
    expected = [
        key
        for key in keys
        if ring.shard_for(key) != other.shard_for(key)
    ]
    assert moved == expected
    for key in moved:
        assert other.shard_for(key) == shards


# -- migration runs --------------------------------------------------------

MIGRATION_GRID = ClusterGrid(
    shard_counts=(2,),
    total_budgets_gb=(2.0,),
    record_count=300,
    operation_count=900,
    epochs=3,
    membership=((1, "add", 2), (2, "remove", 0)),
)


@pytest.fixture(scope="module")
def migration_report():
    return run_cluster_grid(MIGRATION_GRID, jobs=1)


def test_migration_bytes_identical_across_jobs_and_reruns(
    migration_report,
):
    serial = dumps(migration_report, strip_wall=True)
    for jobs in (1, 2, 8):
        assert (
            dumps(run_cluster_grid(MIGRATION_GRID, jobs=jobs), strip_wall=True)
            == serial
        )


def test_killed_worker_does_not_change_migration_bytes(
    migration_report, tmp_path
):
    plans = [plan_cluster(spec) for spec in MIGRATION_GRID.specs()]
    jobs = shard_jobs(plans)
    marker = tmp_path / "kill-once"
    doctored = dataclasses.replace(
        jobs[2], fault_kill_once_path=str(marker)
    )
    report = run_cluster_grid(
        MIGRATION_GRID, jobs=2, _job_overrides={2: doctored}
    )
    assert marker.exists()
    assert report["wall"]["retries"] >= 1
    assert dumps(report, strip_wall=True) == dumps(
        migration_report, strip_wall=True
    )


def test_migration_records_and_events(migration_report):
    run = migration_report["runs"][0]
    migrations = run["migrations"]
    assert [
        (m["epoch"], m["action"], m["shard"]) for m in migrations
    ] == [(1, "add", 2), (2, "remove", 0)]
    for migration in migrations:
        assert migration["moved_keys"] > 0
        assert 0 < migration["arc_moved"] < 1
    event_types = [event["type"] for event in run["events"]]
    assert event_types.count("ShardMigration") == 2
    assert event_types.count("BudgetHandoff") == 2
    handoffs = [
        event for event in run["events"] if event["type"] == "BudgetHandoff"
    ]
    assert [(h["epoch"], h["kind"], h["shard"]) for h in handoffs] == [
        (1, "grant", 2),
        (2, "release", 0),
    ]


def test_workers_replay_the_coordinators_handoff(migration_report):
    """Sum of keys migrated into shards == coordinator's moved-key count."""
    run = migration_report["runs"][0]
    migrated_in = [
        shard["result"]["migrated_in_keys"] for shard in run["shards"]
    ]
    assert sum(migrated_in) == sum(
        migration["moved_keys"] for migration in run["migrations"]
    )
    assert len(run["shards"]) == 3  # initial 2 plus the added shard
    # The global stream still partitions exactly across the fleet.
    assert run["summary"]["routed_ops"] == 900


def test_inactive_shards_hold_only_the_floor(migration_report):
    run = migration_report["runs"][0]
    floor = run["spec"]["floor_pages"]
    leases = run["leases"]
    # Shard 2 joins at epoch 1: floor-only before, leased after.
    assert leases[0][2]["pages"] == floor
    # Shard 0 is removed at epoch 2: back to floor, budget handed off.
    assert leases[2][0]["pages"] == floor
    # Conservation holds every epoch, the handoff epochs included.
    capacity = run["summary"]["pool"]["capacity_schedule"]
    for epoch, epoch_leases in enumerate(leases):
        assert (
            sum(lease["pages"] for lease in epoch_leases)
            <= capacity[epoch]
        )


def test_baseline_migration_plans_key_moves_without_budget(tmp_path):
    grid = dataclasses.replace(
        MIGRATION_GRID, total_budgets_gb=(None,)
    )
    report = run_cluster_grid(grid, jobs=1)
    run = report["runs"][0]
    assert run["leases"] == []
    assert "pool" not in run["summary"]
    assert [m["action"] for m in run["migrations"]] == ["add", "remove"]
    assert all(
        event["type"] == "ShardMigration" for event in run["events"]
    )
    assert sum(
        shard["result"]["migrated_in_keys"] for shard in run["shards"]
    ) == sum(m["moved_keys"] for m in run["migrations"])
