"""Call-graph builder tests: resolution closure, robustness, golden snapshot.

The graph is *over-approximate by design* (name-based attribute
resolution), so the properties tested here are safety properties: every
resolved project edge points at an indexed symbol, traversal terminates
on cycles, and exotic shapes (decorators, ``functools.partial``,
nested defs, relative imports) never crash the builder.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import ModuleUnderLint, ProjectIndex

SRC = Path(__file__).resolve().parents[2] / "src"
GOLDEN = Path(__file__).resolve().parent / "golden" / "callgraph_flusher.txt"

#: Packages indexed for the golden snapshot — kept to what the flusher
#: actually touches so unrelated modules cannot churn the golden file.
FLUSHER_SCOPE = ["core", "mem", "obs", "sim"]


def index_source(source: str, path: str = "repro/mod.py") -> ProjectIndex:
    module = ModuleUnderLint(path, textwrap.dedent(source))
    return ProjectIndex([module])


class TestSymbolTable:
    def test_functions_classes_and_methods_are_indexed(self):
        idx = index_source(
            """
            class Box:
                limit = 4

                def __init__(self, n):
                    self.n = n

                @property
                def full(self):
                    return self.n >= self.limit

            def make():
                return Box(0)
            """
        )
        assert "repro.mod.make" in idx.functions
        assert "repro.mod.Box" in idx.classes
        box = idx.classes["repro.mod.Box"]
        assert "__init__" in box.methods
        assert "full" in box.properties
        assert "n" in box.instance_attrs
        assert "limit" in box.class_attrs

    def test_module_body_is_a_pseudo_function(self):
        idx = index_source("x = compute()\n\ndef compute():\n    return 1\n")
        assert "repro.mod.<module>" in idx.functions
        assert "repro.mod.compute" in idx.graph.edges["repro.mod.<module>"]

    def test_import_aliases_resolve(self):
        idx = index_source(
            """
            import time
            import numpy as np
            from functools import partial as p
            """
        )
        imports = idx.imports["repro.mod"]
        assert imports["time"] == "time"
        assert imports["np"] == "numpy"
        assert imports["p"] == "functools.partial"


class TestResolution:
    def test_direct_and_transitive_edges(self):
        idx = index_source(
            """
            def leaf():
                return 1

            def middle():
                return leaf()

            def top():
                return middle()
            """
        )
        g = idx.graph
        assert "repro.mod.leaf" in g.edges["repro.mod.middle"]
        assert "repro.mod.middle" in g.edges["repro.mod.top"]
        tree = g.reachable(["repro.mod.top"])
        assert {"repro.mod.top", "repro.mod.middle", "repro.mod.leaf"} <= tree

    def test_self_method_resolution_prefers_own_class(self):
        idx = index_source(
            """
            class A:
                def step(self):
                    return self.helper()

                def helper(self):
                    return 1

            class B:
                def helper(self):
                    return 2
            """
        )
        edges = idx.graph.edges["repro.mod.A.step"]
        assert "repro.mod.A.helper" in edges
        assert "repro.mod.B.helper" not in edges

    def test_super_calls_resolve_to_nothing(self):
        idx = index_source(
            """
            class Base:
                def __init__(self):
                    self.x = 1

            class Child(Base):
                def __init__(self):
                    super().__init__()
            """
        )
        edges = idx.graph.edges.get("repro.mod.Child.__init__", {})
        assert "repro.mod.Base.__init__" not in edges

    def test_higher_order_reference_edges(self):
        idx = index_source(
            """
            def worker(x):
                return x

            def run(apply):
                return apply(worker)
            """
        )
        assert "repro.mod.worker" in idx.graph.edges["repro.mod.run"]

    def test_reachable_terminates_on_cycles(self):
        idx = index_source(
            """
            def ping():
                return pong()

            def pong():
                return ping()
            """
        )
        tree = idx.graph.reachable(["repro.mod.ping"])
        assert tree == {"repro.mod.ping", "repro.mod.pong"}

    def test_decorators_and_partial_do_not_crash(self):
        idx = index_source(
            """
            import functools

            @functools.lru_cache(maxsize=None)
            def cached(n):
                return n

            @property
            def odd_toplevel_property():
                return 1

            bound = functools.partial(cached, 3)

            def use():
                return bound()
            """
        )
        # partial(cached, 3) records a higher-order edge for ``cached``.
        assert "repro.mod.cached" in idx.graph.edges["repro.mod.<module>"]


class TestProperties:
    """Hypothesis: safety properties over random call topologies."""

    @settings(max_examples=50, deadline=None)
    @given(
        n=st.integers(min_value=1, max_value=6),
        calls=st.lists(
            st.tuples(st.integers(0, 5), st.integers(0, 5)), max_size=24
        ),
    )
    def test_closed_under_resolution(self, n, calls):
        bodies = {i: [] for i in range(n)}
        for caller, callee in calls:
            bodies[caller % n].append(callee % n)
        chunks = []
        for i in range(n):
            lines = [f"    f{j}()" for j in bodies[i]] or ["    pass"]
            chunks.append(f"def f{i}():\n" + "\n".join(lines))
        idx = index_source("\n\n".join(chunks) + "\n")
        qualnames = set(idx.functions)
        for caller, targets in idx.graph.edges.items():
            assert caller in qualnames
            for target in targets:
                if idx.is_project_target(target):
                    assert (
                        target in idx.functions or target in idx.classes
                    ), f"dangling project edge {caller} -> {target}"
        # Traversal terminates and stays inside the project.
        tree = idx.graph.reachable(sorted(qualnames))
        assert tree <= qualnames


class TestGoldenSnapshot:
    def make_index(self) -> ProjectIndex:
        return ProjectIndex.from_paths(
            [SRC / "repro" / pkg for pkg in FLUSHER_SCOPE]
        )

    def test_flusher_call_graph_matches_golden(self):
        rendered = self.make_index().graph.render_module_edges(
            "repro.core.flusher"
        )
        expected = GOLDEN.read_text(encoding="utf-8")
        assert rendered == expected, (
            "call graph of repro.core.flusher drifted from the golden "
            "snapshot; if the change is intentional regenerate with:\n"
            "  python -c \"from repro.analysis import ProjectIndex; "
            "print(ProjectIndex.from_paths(['src/repro/core', "
            "'src/repro/mem', 'src/repro/obs', 'src/repro/sim'])"
            ".graph.render_module_edges('repro.core.flusher'), end='')\""
            " > tests/analysis/golden/callgraph_flusher.txt"
        )

    def test_rendering_is_deterministic(self):
        first = self.make_index().graph.render_module_edges("repro.core.flusher")
        second = self.make_index().graph.render_module_edges("repro.core.flusher")
        assert first == second
