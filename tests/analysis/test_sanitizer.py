"""Sanitizer tests: one per invariant, plus arming and zero-drift checks.

Each invariant test breaks the corresponding piece of simulator state by
hand (the running system never violates its own invariants, which is the
point) and asserts the sanitizer hook raises :class:`InvariantViolation`
naming exactly that invariant.
"""

from __future__ import annotations

import pytest

from repro.analysis.sanitizer import (
    INVARIANTS,
    InvariantViolation,
    SimulationSanitizer,
)
from repro.core.config import ViyojitConfig
from repro.core.runtime import Viyojit
from repro.obs.export import to_json
from repro.obs.harness import TraceWorkload, run_traced_workload
from repro.sim.events import Simulation
from tests.obs.regen_golden import GOLDEN_SPECS, fixture_path, render


def make_system(num_pages=32, budget=4, sanitize=True):
    sim = Simulation()
    config = ViyojitConfig(dirty_budget_pages=budget, sanitize=sanitize)
    system = Viyojit(sim, num_pages=num_pages, config=config)
    system.start()
    return system


def dirty_distinct_pages(system, count):
    """Write one payload to each of ``count`` distinct pages."""
    page_size = system.region.page_size
    mapping = system.mmap(count * page_size)
    for page in range(count):
        system.write(mapping.addr(page * page_size), b"payload-" + bytes([page]))
    return mapping


def corrupt_dirty_bits(page_table, pfns, value):
    """Flip raw PTE dirty bits behind the page table's back.

    Kernel-agnostic state corruption: bypasses ``set_dirty``'s count
    bookkeeping on purpose (the sanitizer is supposed to notice), and
    reaches into whichever storage the active kernel uses — the object
    kernel's boolean column or the SoA kernel's packed flags.
    """
    flags = getattr(page_table, "flags", None)
    for pfn in pfns:
        if flags is None:
            page_table.dirty[pfn] = value  # lint: ignore[L1]
        elif value:
            flags[pfn] |= 0x02
        else:
            flags[pfn] &= 0xFD


class TestArming:
    def test_config_flag_controls_arming(self):
        assert make_system(sanitize=True).sanitizer is not None
        assert make_system(sanitize=False).sanitizer is None

    def test_env_var_sets_config_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        assert ViyojitConfig(dirty_budget_pages=4).sanitize is True
        monkeypatch.setenv("REPRO_SANITIZE", "0")
        assert ViyojitConfig(dirty_budget_pages=4).sanitize is False
        monkeypatch.delenv("REPRO_SANITIZE")
        assert ViyojitConfig(dirty_budget_pages=4).sanitize is False

    def test_checks_accumulate_during_normal_run(self):
        system = make_system(num_pages=32, budget=4)
        dirty_distinct_pages(system, 12)  # 3x the budget: faults + evictions
        assert system.sanitizer is not None
        assert system.sanitizer.checks > 0

    def test_invariant_catalogue(self):
        assert set(INVARIANTS) == {
            "clock-monotonic",
            "budget-bound",
            "evicted-durability",
            "scan-coherence",
        }
        exc = InvariantViolation("budget-bound", "boom")
        assert exc.invariant == "budget-bound"
        assert "[budget-bound] boom" in str(exc)


class TestClockMonotonic:
    def test_backwards_clock_raises(self):
        system = make_system()
        dirty_distinct_pages(system, 2)
        # Wind virtual time back past the sanitizer's last observation.
        system.sim.clock._now = system.sanitizer._last_now - 1
        with pytest.raises(InvariantViolation) as exc:
            system.sanitizer.after_epoch_scan()
        assert exc.value.invariant == "clock-monotonic"


class TestBudgetBound:
    def test_overfull_dirty_set_raises(self):
        system = make_system(num_pages=32, budget=4)
        dirty_distinct_pages(system, 3)
        system.tracker._dirty.update({20, 21})  # smuggle past the budget gate
        with pytest.raises(InvariantViolation) as exc:
            system.sanitizer.after_dirtied(21)
        assert exc.value.invariant == "budget-bound"

    def test_shrink_leaves_legitimate_overage(self):
        system = make_system(num_pages=32, budget=8)
        dirty_distinct_pages(system, 5)
        assert system.tracker.count == 5
        system.set_dirty_budget(2)
        # Over the new budget, but only because of the shrink: allowed.
        system.sanitizer.after_dirtied(0)

    def test_growth_while_over_shrunk_budget_raises(self):
        system = make_system(num_pages=32, budget=8)
        dirty_distinct_pages(system, 5)
        system.set_dirty_budget(2)
        system.tracker._dirty.add(25)  # grow while already over: never legal
        with pytest.raises(InvariantViolation) as exc:
            system.sanitizer.after_dirtied(25)
        assert exc.value.invariant == "budget-bound"


class TestEvictedDurability:
    def test_flush_completion_with_page_still_dirty_raises(self):
        system = make_system(num_pages=32, budget=8)
        dirty_distinct_pages(system, 2)
        still_dirty = next(iter(system.tracker))
        with pytest.raises(InvariantViolation) as exc:
            system.sanitizer.after_flush_complete(still_dirty)
        assert exc.value.invariant == "evicted-durability"

    def test_flush_completion_without_durable_copy_raises(self):
        system = make_system(num_pages=32, budget=8)
        dirty_distinct_pages(system, 2)
        assert system.backing.read(30) is None  # page 30 never flushed
        with pytest.raises(InvariantViolation) as exc:
            system.sanitizer.after_flush_complete(30)
        assert exc.value.invariant == "evicted-durability"


class TestScanCoherence:
    def test_surviving_dirty_bit_raises(self):
        system = make_system()
        corrupt_dirty_bits(system.page_table, [5], True)
        with pytest.raises(InvariantViolation) as exc:
            system.sanitizer.after_epoch_scan()
        assert exc.value.invariant == "scan-coherence"

    def test_surviving_tlb_entry_raises_when_scan_flushes(self):
        system = make_system()
        assert system.config.flush_tlb_on_scan
        dirty_distinct_pages(system, 2)  # populates the TLB
        corrupt_dirty_bits(
            system.page_table, range(system.page_table.num_pages), False
        )
        assert system.tlb.resident > 0
        with pytest.raises(InvariantViolation, match="TLB") as exc:
            system.sanitizer.after_epoch_scan()
        assert exc.value.invariant == "scan-coherence"


class TestZeroDrift:
    SPEC = TraceWorkload(
        system="viyojit", num_pages=64, dirty_budget_pages=6,
        hot_pages=24, ops=80, seed=11,
    )

    def test_sanitized_run_is_byte_identical(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "0")
        plain = run_traced_workload(self.SPEC)
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        sanitized = run_traced_workload(self.SPEC)
        assert to_json(plain) == to_json(sanitized)
        assert plain["final"]["now_ns"] == sanitized["final"]["now_ns"]

    @pytest.mark.parametrize("name", sorted(GOLDEN_SPECS))
    def test_golden_fixtures_match_with_sanitizer_on(self, name, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        expected = fixture_path(name).read_text(encoding="utf-8")
        assert render(name) == expected
