"""Baseline add/remove semantics and canonical serialisation."""

from __future__ import annotations

import json

import pytest

from repro.analysis import Baseline, Violation


def v(rule="D1", path="a.py", line=3, message="wall clock"):
    return Violation(rule_id=rule, path=path, line=line, col=0, message=message)


class TestMatching:
    def test_known_finding_is_baselined(self):
        baseline = Baseline.from_violations([v()])
        diff = baseline.diff([v()])
        assert diff.clean
        assert len(diff.baselined) == 1
        assert diff.new == [] and diff.stale == []

    def test_new_finding_fails(self):
        baseline = Baseline.from_violations([v()])
        diff = baseline.diff([v(), v(message="other")])
        assert not diff.clean
        assert [x.message for x in diff.new] == ["other"]

    def test_fixed_finding_is_stale_and_fails(self):
        baseline = Baseline.from_violations([v()])
        diff = baseline.diff([])
        assert not diff.clean
        assert diff.stale == [("D1", "a.py", "wall clock")]

    def test_line_moves_do_not_count_as_new(self):
        baseline = Baseline.from_violations([v(line=3)])
        diff = baseline.diff([v(line=300)])
        assert diff.clean

    def test_multiset_counts(self):
        # Two identical findings grandfathered; fixing one leaves one
        # stale entry — the baseline must shrink with the fix.
        baseline = Baseline.from_violations([v(), v()])
        assert len(baseline) == 2
        diff = baseline.diff([v()])
        assert len(diff.baselined) == 1
        assert diff.stale == [("D1", "a.py", "wall clock")]
        # A third identical finding would be new, not baselined.
        diff = baseline.diff([v(), v(), v()])
        assert len(diff.new) == 1


class TestSerialisation:
    def test_round_trip(self):
        baseline = Baseline.from_violations([v(), v(message="m2", rule="V1")])
        again = Baseline.from_json(baseline.to_json())
        assert again == baseline

    def test_bytes_are_canonical(self):
        a = Baseline.from_violations([v(rule="V1"), v(rule="D1")])
        b = Baseline.from_violations([v(rule="D1"), v(rule="V1")])
        assert a.to_json() == b.to_json()
        assert a.to_json().endswith("\n")

    def test_save_load(self, tmp_path):
        path = tmp_path / "baseline.json"
        baseline = Baseline.from_violations([v()])
        baseline.save(str(path))
        assert Baseline.load(str(path)) == baseline

    def test_version_mismatch_rejected(self):
        payload = json.dumps({"version": 99, "findings": []})
        with pytest.raises(ValueError, match="version"):
            Baseline.from_json(payload)

    def test_empty_baseline_document_shape(self):
        assert json.loads(Baseline().to_json()) == {
            "version": 1,
            "findings": [],
        }
