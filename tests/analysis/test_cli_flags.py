"""CLI surface: --strict, baseline flags, severity, --fail-on, SARIF."""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis.cli import main

FIXTURES = Path(__file__).resolve().parent / "fixtures" / "program"
BAD_W1 = str(FIXTURES / "bad_w1.py")


class TestStrict:
    def test_program_rules_need_strict(self, capsys):
        # W1's transitive findings only appear under --strict.
        assert main([BAD_W1, "--select", "W1"]) == 0
        capsys.readouterr()
        assert main([BAD_W1, "--select", "W1", "--strict"]) == 1
        out = capsys.readouterr().out
        assert "W1" in out and "transitively" in out

    def test_list_rules_shows_both_registries(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "D1  [module]" in out
        assert "W1  [program]" in out

    def test_unknown_select_is_usage_error(self, capsys):
        assert main([BAD_W1, "--select", "Z9", "--strict"]) == 2
        assert "unknown rule id" in capsys.readouterr().err


class TestSeverity:
    def test_fail_on_error_ignores_demoted_rule(self, capsys):
        code = main(
            [
                BAD_W1,
                "--select",
                "W1",
                "--strict",
                "--severity",
                "W1=note",
                "--fail-on",
                "error",
            ]
        )
        assert code == 0  # findings still printed, just not failing
        assert "W1" in capsys.readouterr().out

    def test_fail_on_note_catches_demoted_rule(self):
        code = main(
            [
                BAD_W1,
                "--select",
                "W1",
                "--strict",
                "--severity",
                "W1=note",
                "--fail-on",
                "note",
            ]
        )
        assert code == 1

    def test_bad_severity_is_usage_error(self, capsys):
        assert main([BAD_W1, "--severity", "W1=loud"]) == 2
        assert "unknown severity" in capsys.readouterr().err


class TestBaselineFlags:
    def test_update_then_check_cycle(self, tmp_path, capsys):
        baseline = str(tmp_path / "baseline.json")
        args = [BAD_W1, "--select", "W1,D1", "--strict"]
        assert main(args + ["--update-baseline", baseline]) == 0
        capsys.readouterr()
        # Same findings, now grandfathered: run passes.
        assert main(args + ["--baseline", baseline]) == 0
        out = capsys.readouterr().out
        assert "grandfathered" in out
        # Narrower run: D1/W1 findings disappear -> stale entries fail.
        assert main([BAD_W1, "--select", "D1", "--baseline", baseline]) == 1
        assert "stale baseline entry" in capsys.readouterr().out

    def test_new_findings_fail_against_baseline(self, tmp_path, capsys):
        baseline = str(tmp_path / "baseline.json")
        assert main([BAD_W1, "--select", "D1", "--update-baseline", baseline]) == 0
        capsys.readouterr()
        code = main([BAD_W1, "--select", "W1,D1", "--strict", "--baseline", baseline])
        assert code == 1
        assert "W1" in capsys.readouterr().out

    def test_missing_baseline_file_is_usage_error(self, tmp_path, capsys):
        code = main([BAD_W1, "--baseline", str(tmp_path / "missing.json")])
        assert code == 2
        assert "cannot read baseline" in capsys.readouterr().err


class TestSarifOutput:
    def test_format_sarif_prints_valid_json(self, capsys):
        assert main([BAD_W1, "--strict", "--format", "sarif"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == "2.1.0"
        assert any(
            result["ruleId"] == "W1" for result in doc["runs"][0]["results"]
        )

    def test_sarif_out_writes_alongside_text(self, tmp_path, capsys):
        out_file = tmp_path / "lint.sarif"
        assert main([BAD_W1, "--strict", "--sarif-out", str(out_file)]) == 1
        assert "violation" in capsys.readouterr().out
        doc = json.loads(out_file.read_text(encoding="utf-8"))
        rule_ids = {r["id"] for r in doc["runs"][0]["tool"]["driver"]["rules"]}
        assert {"W1", "R1", "K1", "P1"} <= rule_ids

    def test_baselined_findings_are_suppressed_in_sarif(self, tmp_path):
        baseline = str(tmp_path / "baseline.json")
        out_file = tmp_path / "lint.sarif"
        args = [BAD_W1, "--select", "W1", "--strict"]
        assert main(args + ["--update-baseline", baseline]) == 0
        assert (
            main(args + ["--baseline", baseline, "--sarif-out", str(out_file)])
            == 0
        )
        doc = json.loads(out_file.read_text(encoding="utf-8"))
        results = doc["runs"][0]["results"]
        assert results and all("suppressions" in r for r in results)
