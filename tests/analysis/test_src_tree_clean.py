"""The shipped ``src/`` tree must lint clean under every rule.

This is the enforcement test behind the CI lint job: any new wall-clock
call, unseeded RNG, unguarded event construction, PTE-bit poke outside
``repro.mem``, or bare assert anywhere under ``src/`` fails the suite
with the exact ``path:line:col: RULE message`` lines in the report.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis import lint_paths

SRC = Path(__file__).resolve().parents[2] / "src"


def test_src_tree_lints_clean():
    report = lint_paths([SRC])
    rendered = "\n".join(v.render() for v in report.violations)
    assert report.clean, f"src/ has lint violations:\n{rendered}"
    # Sanity: the walk actually covered the package, not an empty dir.
    assert report.files_checked >= 50
