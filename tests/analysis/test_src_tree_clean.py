"""The shipped ``src/`` tree must lint clean under every rule.

This is the enforcement test behind the CI lint job: any new wall-clock
call, unseeded RNG, unguarded event construction, PTE-bit poke outside
``repro.mem``, or bare assert anywhere under ``src/`` fails the suite
with the exact ``path:line:col: RULE message`` lines in the report.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis import Baseline, lint_paths, lint_project

SRC = Path(__file__).resolve().parents[2] / "src"
BASELINE = Path(__file__).resolve().parents[2] / "lint_baseline.json"


def test_src_tree_lints_clean():
    report = lint_paths([SRC])
    rendered = "\n".join(v.render() for v in report.violations)
    assert report.clean, f"src/ has lint violations:\n{rendered}"
    # Sanity: the walk actually covered the package, not an empty dir.
    assert report.files_checked >= 50


def test_src_tree_passes_whole_program_pass():
    # The strict pass: per-module rules plus W1/R1/K1/P1 over the call
    # graph of the entire package, exactly what CI runs.
    report = lint_project([SRC])
    rendered = "\n".join(v.render() for v in report.violations)
    assert report.clean, f"src/ has whole-program violations:\n{rendered}"


def test_checked_in_baseline_matches_current_findings():
    # Drift gate in test form: regenerating the baseline from the
    # current strict findings must reproduce the checked-in bytes.
    report = lint_project([SRC])
    regenerated = Baseline.from_violations(report.violations).to_json()
    assert regenerated == BASELINE.read_text(encoding="utf-8"), (
        "lint_baseline.json is stale; regenerate with "
        "`python -m repro.analysis src --strict --update-baseline`"
    )
