"""Whole-program rule tests: W1, R1, K1 (mutation self-test), P1.

The K1 tests are the PR 6 contract guard demanded by the issue: they
copy the real ``repro/mem`` sources into a scratch tree, doctor one
kernel, and assert the parity rule fires — proving that deleting a
``SoATLB`` method or adding an object-kernel-only method fails the
build, not just this suite.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

from repro.analysis import lint_project, make_program_rules

FIXTURES = Path(__file__).resolve().parent / "fixtures" / "program"
SRC = Path(__file__).resolve().parents[2] / "src"
MEM = SRC / "repro" / "mem"


def strict_lint(paths, select=None):
    return lint_project(paths, rules=[], program_rules=make_program_rules(select))


def findings(report, rule_id):
    return [v for v in report.violations if v.rule_id == rule_id]


class TestW1WallClockTaint:
    def test_two_hop_taint_is_flagged(self):
        report = strict_lint([FIXTURES / "bad_w1.py"], ["W1"])
        w1 = findings(report, "W1")
        by_line = {v.line: v for v in w1}
        # leaf (direct), middle (one hop), top (two hops) — not innocent.
        assert len(w1) == 3
        assert 12 in by_line and "directly" in by_line[12].message
        assert 16 in by_line and "transitively" in by_line[16].message
        assert 20 in by_line
        assert (
            "top -> bad_w1.middle -> bad_w1.leaf -> time.perf_counter()"
            in by_line[20].message
        )

    def test_timer_module_is_exempt(self):
        report = strict_lint([SRC / "repro" / "perf" / "timer.py"], ["W1"])
        assert findings(report, "W1") == []

    def test_callers_of_the_timer_barrier_stay_clean(self, tmp_path):
        # A function that uses wall time *through* best_of is sanctioned.
        tree = tmp_path / "repro"
        (tree / "perf").mkdir(parents=True)
        (tree / "perf" / "timer.py").write_text(
            (SRC / "repro" / "perf" / "timer.py").read_text(encoding="utf-8"),
            encoding="utf-8",
        )
        (tree / "user.py").write_text(
            textwrap.dedent(
                """
                from repro.perf.timer import best_of

                def bench(fn):
                    return best_of(3, fn)
                """
            ),
            encoding="utf-8",
        )
        report = strict_lint([tree], ["W1"])
        assert findings(report, "W1") == []

    def test_suppression_comment_silences_w1(self, tmp_path):
        path = tmp_path / "mod.py"
        path.write_text(
            "import time\n\n\ndef f():\n"
            "    return time.monotonic()  # lint: ignore[W1]\n",
            encoding="utf-8",
        )
        report = strict_lint([path], ["W1"])
        assert findings(report, "W1") == []


class TestR1RNGStreams:
    def test_bad_constructions_are_flagged(self):
        report = strict_lint([FIXTURES / "bad_r1.py"], ["R1"])
        r1 = findings(report, "R1")
        messages = {v.line: v.message for v in r1}
        assert len(r1) == 4
        assert "literal" in messages[18]  # random.Random(42)
        assert "module-level global `GLOBAL_SEED`" in messages[22]
        assert "without a seed" in messages[26]
        assert "opaque call `fetch_entropy(...)`" in messages[30]

    def test_good_constructions_pass(self):
        report = strict_lint([FIXTURES / "bad_r1.py"], ["R1"])
        flagged_lines = {v.line for v in findings(report, "R1")}
        # param_seed / config_seed / helper_seed / wrapped_seed bodies.
        assert flagged_lines.isdisjoint({38, 42, 46, 54})

    def test_rebound_parameter_loses_seededness(self, tmp_path):
        path = tmp_path / "mod.py"
        path.write_text(
            textwrap.dedent(
                """
                import random

                def f(seed):
                    seed = 7
                    return random.Random(seed)
                """
            ),
            encoding="utf-8",
        )
        report = strict_lint([path], ["R1"])
        assert len(findings(report, "R1")) == 1

    def test_derived_local_keeps_seededness(self, tmp_path):
        path = tmp_path / "mod.py"
        path.write_text(
            textwrap.dedent(
                """
                import random

                def f(base):
                    derived = base * 1000 + 3
                    return random.Random(derived)
                """
            ),
            encoding="utf-8",
        )
        report = strict_lint([path], ["R1"])
        assert findings(report, "R1") == []


class TestK1KernelParity:
    """Mutation self-test: doctor one kernel, the rule must fire."""

    def make_tree(self, tmp_path, mutate=None):
        tree = tmp_path / "repro" / "mem"
        tree.mkdir(parents=True)
        for name in ("page_table.py", "tlb.py", "soa.py"):
            text = (MEM / name).read_text(encoding="utf-8")
            if mutate is not None:
                text = mutate(name, text)
            (tree / name).write_text(text, encoding="utf-8")
        return tmp_path / "repro"

    def test_pristine_kernels_are_in_parity(self, tmp_path):
        report = strict_lint([self.make_tree(tmp_path)], ["K1"])
        assert findings(report, "K1") == []

    def test_deleting_a_soatlb_method_fires(self, tmp_path):
        def mutate(name, text):
            if name == "soa.py":
                assert text.count("def lookup(") == 1
                return text.replace("def lookup(", "def _lookup_gone(")
            return text

        report = strict_lint([self.make_tree(tmp_path, mutate)], ["K1"])
        k1 = findings(report, "K1")
        assert any(
            "`lookup`" in v.message and "not on `repro.mem.soa.SoATLB`" in v.message
            for v in k1
        )

    def test_method_added_to_object_kernel_only_fires(self, tmp_path):
        def mutate(name, text):
            if name == "tlb.py":
                return text + "\n    def brand_new(self, pfn):\n        return pfn\n"
            return text

        report = strict_lint([self.make_tree(tmp_path, mutate)], ["K1"])
        k1 = findings(report, "K1")
        assert any(
            "`brand_new`" in v.message
            and "not on `repro.mem.soa.SoATLB`" in v.message
            for v in k1
        )

    def test_method_added_to_soa_kernel_only_fires(self, tmp_path):
        def mutate(name, text):
            if name == "soa.py":
                return text + "\n    def soa_only(self):\n        return 0\n"
            return text

        report = strict_lint([self.make_tree(tmp_path, mutate)], ["K1"])
        k1 = findings(report, "K1")
        assert any(
            "`soa_only`" in v.message and "only on `repro.mem.soa.SoATLB`" in v.message
            for v in k1
        )

    def test_signature_drift_fires(self, tmp_path):
        def mutate(name, text):
            if name == "soa.py":
                return text.replace(
                    "def lookup(self, pfn: int)",
                    "def lookup(self, pfn: int, hint: int = 0)",
                )
            return text

        report = strict_lint([self.make_tree(tmp_path, mutate)], ["K1"])
        k1 = findings(report, "K1")
        assert any("signature drift on `lookup`" in v.message for v in k1)

    def test_missing_twin_class_fires(self, tmp_path):
        def mutate(name, text):
            if name == "soa.py":
                return text.replace("class SoATLB", "class SoATLBRenamed")
            return text

        report = strict_lint([self.make_tree(tmp_path, mutate)], ["K1"])
        k1 = findings(report, "K1")
        assert any("kernel pair incomplete" in v.message for v in k1)


class TestP1ForkSafety:
    def make_tree(self, tmp_path, worker_src, engine_src):
        tree = tmp_path / "repro" / "parallel"
        tree.mkdir(parents=True)
        (tree / "worker.py").write_text(
            textwrap.dedent(worker_src), encoding="utf-8"
        )
        (tree / "engine.py").write_text(
            textwrap.dedent(engine_src), encoding="utf-8"
        )
        return tmp_path / "repro"

    def test_lambda_entry_is_flagged(self, tmp_path):
        tree = self.make_tree(
            tmp_path,
            "def unused():\n    pass\n",
            """
            def run(pool):
                return pool.submit(lambda: 1)
            """,
        )
        report = strict_lint([tree], ["P1"])
        assert any(
            "lambda" in v.message for v in findings(report, "P1")
        )

    def test_nested_function_entry_is_flagged(self, tmp_path):
        tree = self.make_tree(
            tmp_path,
            "def unused():\n    pass\n",
            """
            def run(pool):
                def job():
                    return 1
                return pool.submit(job)
            """,
        )
        report = strict_lint([tree], ["P1"])
        assert any("closure" in v.message for v in findings(report, "P1"))

    def test_worker_tree_global_write_is_flagged(self, tmp_path):
        tree = self.make_tree(
            tmp_path,
            """
            CACHE = {}

            def job(payload):
                return helper(payload)

            def helper(payload):
                CACHE[payload] = 1
                return CACHE
            """,
            """
            from repro.parallel.worker import job

            def run(pool):
                return pool.submit(job, 3)
            """,
        )
        report = strict_lint([tree], ["P1"])
        p1 = findings(report, "P1")
        assert any(
            "`CACHE`" in v.message and "worker.helper" in v.message for v in p1
        )

    def test_global_declaration_in_worker_tree_is_flagged(self, tmp_path):
        tree = self.make_tree(
            tmp_path,
            """
            COUNT = 0

            def job():
                global COUNT
                COUNT = COUNT + 1
            """,
            """
            from repro.parallel.worker import job

            def run(pool):
                return pool.submit(job)
            """,
        )
        report = strict_lint([tree], ["P1"])
        assert any(
            "global COUNT" in v.message for v in findings(report, "P1")
        )

    def test_module_level_entry_with_local_state_is_clean(self, tmp_path):
        tree = self.make_tree(
            tmp_path,
            """
            def job(payload):
                local = {}
                local[payload] = 1
                return local
            """,
            """
            from repro.parallel.worker import job

            def run(pool):
                return pool.submit(job, 3)
            """,
        )
        report = strict_lint([tree], ["P1"])
        assert findings(report, "P1") == []

    def test_writable_memmap_in_worker_tree_is_flagged(self, tmp_path):
        tree = self.make_tree(
            tmp_path,
            """
            import numpy as np

            def job(path):
                return np.memmap(path, dtype=np.uint8, mode="r+")
            """,
            """
            from repro.parallel.worker import job

            def run(pool):
                return pool.submit(job, "x.ops")
            """,
        )
        report = strict_lint([tree], ["P1"])
        assert any(
            "writable np.memmap" in v.message
            for v in findings(report, "P1")
        )

    def test_default_mode_memmap_in_worker_tree_is_flagged(self, tmp_path):
        # np.memmap's default mode is "r+": omitting it is writable too.
        tree = self.make_tree(
            tmp_path,
            """
            from numpy import memmap

            def job(path):
                return memmap(path, dtype="u1")
            """,
            """
            from repro.parallel.worker import job

            def run(pool):
                return pool.submit(job, "x.ops")
            """,
        )
        report = strict_lint([tree], ["P1"])
        assert any(
            "writable np.memmap" in v.message
            for v in findings(report, "P1")
        )

    def test_readonly_memmap_in_worker_tree_is_clean(self, tmp_path):
        tree = self.make_tree(
            tmp_path,
            """
            import numpy as np

            def job(path):
                return np.memmap(path, dtype=np.uint8, mode="r")
            """,
            """
            from repro.parallel.worker import job

            def run(pool):
                return pool.submit(job, "x.ops")
            """,
        )
        report = strict_lint([tree], ["P1"])
        assert findings(report, "P1") == []

    def test_shipped_parallel_package_is_fork_safe(self):
        report = strict_lint([SRC / "repro"], ["P1"])
        assert findings(report, "P1") == []


class TestSelection:
    def test_make_program_rules_filters_silently(self):
        # Mixed selections (module + program IDs) must not raise here.
        rules = make_program_rules(["D1", "W1"])
        assert [r.rule_id for r in rules] == ["W1"]

    def test_all_four_rules_register(self):
        assert [r.rule_id for r in make_program_rules()] == [
            "K1",
            "P1",
            "R1",
            "W1",
        ]
