"""Fixture: D1 determinism violations (parsed by the linter, never run)."""
import random
import time

import numpy as np


def wall_clock_stamp():
    return time.time()


def monotonic_stamp():
    return time.perf_counter_ns()


def unseeded_instance():
    return random.Random()


def global_rng_roll():
    return random.randint(0, 6)


def numpy_global_noise():
    return np.random.rand(4)


def unseeded_generator():
    return np.random.default_rng()


def seeded_is_fine():
    rng = random.Random(7)
    gen = np.random.default_rng(7)
    return rng.random(), gen.random()
