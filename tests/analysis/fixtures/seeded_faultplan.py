"""Fixture: the fault-injection idiom passes every rule unmodified.

Mirrors how ``repro.faults`` draws fault decisions — a ``random.Random``
instance seeded from the plan, virtual-clock timestamps, and guarded
event construction — to pin that the D1 seeded-RNG allowance covers the
subsystem without any suppression comments.
"""
import random

from repro.obs.events import SSDFault


class MiniPlan:
    def __init__(self, seed):
        self.seed = seed


class MiniInjector:
    """Seeded RNG per plan: reproducible fault streams, D1-clean."""

    def __init__(self, plan, sim):
        self.plan = plan
        self.sim = sim
        self.rng = random.Random(plan.seed)

    def should_fail(self, prob):
        return self.rng.random() < prob

    def emit_fault(self, tracer, size_bytes):
        now_ns = self.sim.clock.now
        if tracer.enabled:
            tracer.emit(
                SSDFault(
                    t=now_ns, op="write", kind="fail",
                    size_bytes=size_bytes, delay_ns=0,
                )
            )
