"""Fixture: L1 violations — PTE bit arrays indexed outside repro.mem."""


def corrupt_protection(page_table, pfn):
    page_table.write_protected[pfn] = False


def clear_all_dirty(page_table):
    page_table.dirty[:] = False


def peek_shadow(page_table, pfn):
    return page_table.shadow_dirty[pfn]


def through_the_mmu_is_fine(mmu, pfn):
    mmu.unprotect_page(pfn)
    return mmu.page_table.is_dirty(pfn)
