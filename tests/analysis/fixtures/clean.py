"""Fixture: a file every rule accepts."""
import random


def seeded(seed):
    return random.Random(seed).random()


def virtual_time(sim):
    start_ns = sim.clock.now
    return sim.clock.now - start_ns
