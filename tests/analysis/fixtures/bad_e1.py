"""Fixture: E1 violations — bare assert for invariant enforcement."""


def enforce_budget(count, budget):
    assert count <= budget, "budget violated"
    return count


def typed_exception_is_fine(count, budget):
    if count > budget:
        raise RuntimeError(f"budget violated: {count} > {budget}")
    return count
