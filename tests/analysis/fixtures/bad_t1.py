"""Fixture: T1 violations — trace events built outside a tracer guard."""
from repro.obs.events import BudgetWait, WriteFault


def unguarded(tracer, pfn, now):
    tracer.emit(WriteFault(t=now, pfn=pfn))


def guard_in_wrong_branch(tracer, pfn, now):
    if tracer.enabled:
        pass
    else:
        tracer.emit(BudgetWait(t=now, wait_ns=3))


def lexically_guarded(tracer, pfn, now):
    if tracer.enabled:
        tracer.emit(WriteFault(t=now, pfn=pfn))


def early_return_guarded(tracer, pfn, now):
    if not tracer.enabled:
        return
    tracer.emit(WriteFault(t=now, pfn=pfn))


def and_chain_guarded(tracer, pfn, now, noisy):
    if noisy and tracer.enabled:
        tracer.emit(WriteFault(t=now, pfn=pfn))
