"""Fixture: suppression comments silence findings per line and per rule."""
import time


def suppressed_by_id():
    return time.time()  # lint: ignore[D1]


def suppressed_blanket():
    return time.time()  # lint: ignore


def suppressed_multi(page_table, pfn):
    return page_table.dirty[pfn]  # lint: ignore[L1, D1]


def wrong_id_still_flagged(page_table, pfn):
    return page_table.dirty[pfn]  # lint: ignore[D1]
