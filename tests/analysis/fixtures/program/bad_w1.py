"""W1 fixture: wall clock reached through two call hops.

``top -> middle -> leaf -> time.perf_counter()``: only ``leaf`` touches
``time`` directly (that is also a D1 finding), but W1 must taint
``middle`` and ``top`` through the call graph.
"""

import time


def leaf():
    return time.perf_counter()


def middle():
    return leaf() + 1.0


def top():
    return middle() * 2.0


def innocent(x):
    return x + 1
