"""R1 fixture: RNG streams seeded against the discipline.

Four flagged constructions (literal, module global, unseeded, opaque
call) and four accepted ones (parameter arithmetic, config field,
derived-seed helper, reseed wrapper).  D1 independently flags the
unseeded ``default_rng()``; R1 must flag the *seeded-but-wrong* ones
D1 cannot see.
"""

import random

import numpy as np

GLOBAL_SEED = 99


def literal_seed():
    return random.Random(42)


def global_seed():
    return random.Random(GLOBAL_SEED)


def unseeded():
    return np.random.default_rng()  # lint: ignore[D1]


def opaque_seed():
    return random.Random(fetch_entropy())


def fetch_entropy():
    return 4


def param_seed(seed):
    return random.Random(seed * 2 + 1)


def config_seed(cfg):
    return np.random.default_rng(cfg.seed)


def helper_seed(job):
    return random.Random(derive_seed(job))


def derive_seed(job):
    return job * 31


def wrapped_seed(seed):
    return random.Random(int(abs(seed)) + 7)
