"""Fixture: V1 violations — wall clocks flowing into *_ns quantities."""
import time


def deadline(sim, scheduler):
    start_ns = time.monotonic_ns()
    scheduler.schedule(when_ns=time.time_ns() + 5)
    sim.deadline_ns = int(time.time() * 1e9)
    return start_ns


def virtual_is_fine(sim):
    start_ns = sim.clock.now
    elapsed_ns = sim.clock.now - start_ns
    return elapsed_ns
