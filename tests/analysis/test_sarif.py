"""SARIF 2.1.0 reporter: structural validity and baseline suppressions.

The official OASIS schema is several thousand lines; ``SARIF_SCHEMA``
below is a vendored subset covering everything this reporter emits
(version/schema pinning, driver rules, results, locations, regions,
suppressions) with ``required``/``enum`` constraints taken verbatim
from sarif-schema-2.1.0.  Validation runs through ``jsonschema`` so a
malformed document fails the same way GitHub's ingestion would.
"""

from __future__ import annotations

import json

import jsonschema

from repro.analysis import (
    LintReport,
    Violation,
    make_program_rules,
    make_rules,
    render_sarif,
    sarif_document,
)

#: Vendored subset of sarif-schema-2.1.0 (constraints preserved).
SARIF_SCHEMA = {
    "type": "object",
    "required": ["version", "runs"],
    "properties": {
        "version": {"enum": ["2.1.0"]},
        "$schema": {"type": "string", "format": "uri"},
        "runs": {
            "type": "array",
            "minItems": 1,
            "items": {
                "type": "object",
                "required": ["tool"],
                "properties": {
                    "tool": {
                        "type": "object",
                        "required": ["driver"],
                        "properties": {
                            "driver": {
                                "type": "object",
                                "required": ["name"],
                                "properties": {
                                    "name": {"type": "string"},
                                    "rules": {
                                        "type": "array",
                                        "items": {
                                            "type": "object",
                                            "required": ["id"],
                                            "properties": {
                                                "id": {"type": "string"},
                                                "shortDescription": {
                                                    "type": "object",
                                                    "required": ["text"],
                                                },
                                                "defaultConfiguration": {
                                                    "type": "object",
                                                    "properties": {
                                                        "level": {
                                                            "enum": [
                                                                "none",
                                                                "note",
                                                                "warning",
                                                                "error",
                                                            ]
                                                        }
                                                    },
                                                },
                                            },
                                        },
                                    },
                                },
                            }
                        },
                    },
                    "columnKind": {
                        "enum": ["utf16CodeUnits", "unicodeCodePoints"]
                    },
                    "results": {
                        "type": "array",
                        "items": {
                            "type": "object",
                            "required": ["message"],
                            "properties": {
                                "ruleId": {"type": "string"},
                                "ruleIndex": {
                                    "type": "integer",
                                    "minimum": 0,
                                },
                                "level": {
                                    "enum": [
                                        "none",
                                        "note",
                                        "warning",
                                        "error",
                                    ]
                                },
                                "message": {
                                    "type": "object",
                                    "required": ["text"],
                                },
                                "locations": {
                                    "type": "array",
                                    "items": {
                                        "type": "object",
                                        "properties": {
                                            "physicalLocation": {
                                                "type": "object",
                                                "properties": {
                                                    "artifactLocation": {
                                                        "type": "object",
                                                        "properties": {
                                                            "uri": {
                                                                "type": "string"
                                                            }
                                                        },
                                                    },
                                                    "region": {
                                                        "type": "object",
                                                        "properties": {
                                                            "startLine": {
                                                                "type": "integer",
                                                                "minimum": 1,
                                                            },
                                                            "startColumn": {
                                                                "type": "integer",
                                                                "minimum": 1,
                                                            },
                                                        },
                                                    },
                                                },
                                            }
                                        },
                                    },
                                },
                                "suppressions": {
                                    "type": "array",
                                    "items": {
                                        "type": "object",
                                        "required": ["kind"],
                                        "properties": {
                                            "kind": {
                                                "enum": [
                                                    "inSource",
                                                    "external",
                                                ]
                                            }
                                        },
                                    },
                                },
                            },
                        },
                    },
                },
            },
        },
    },
}


def sample_report():
    return LintReport(
        files_checked=2,
        violations=[
            Violation("D1", "src/a.py", 3, 4, "wall clock"),
            Violation("W1", "src/b.py", 9, 0, "taint path", severity="warning"),
        ],
    )


def all_rules():
    return list(make_rules()) + list(make_program_rules())


class TestSarifDocument:
    def test_validates_against_schema(self):
        doc = sarif_document(sample_report(), rules=all_rules())
        jsonschema.validate(doc, SARIF_SCHEMA)

    def test_empty_report_validates(self):
        doc = sarif_document(LintReport(files_checked=5, violations=[]))
        jsonschema.validate(doc, SARIF_SCHEMA)
        assert doc["runs"][0]["results"] == []

    def test_version_and_schema_pinned(self):
        doc = sarif_document(sample_report())
        assert doc["version"] == "2.1.0"
        assert "sarif-schema-2.1.0" in doc["$schema"]

    def test_rules_are_sorted_and_indexed(self):
        doc = sarif_document(sample_report(), rules=all_rules())
        driver = doc["runs"][0]["tool"]["driver"]
        ids = [rule["id"] for rule in driver["rules"]]
        assert ids == sorted(ids)
        for result in doc["runs"][0]["results"]:
            index = result["ruleIndex"]
            assert driver["rules"][index]["id"] == result["ruleId"]

    def test_result_carries_location_and_level(self):
        doc = sarif_document(sample_report(), rules=all_rules())
        first, second = doc["runs"][0]["results"]
        region = first["locations"][0]["physicalLocation"]["region"]
        assert region == {"startLine": 3, "startColumn": 5}  # 1-based col
        assert first["level"] == "error"
        assert second["level"] == "warning"

    def test_baselined_findings_carry_suppressions(self):
        report = sample_report()
        doc = sarif_document(
            report, rules=all_rules(), baselined=[report.violations[0]]
        )
        jsonschema.validate(doc, SARIF_SCHEMA)
        first, second = doc["runs"][0]["results"]
        assert first["suppressions"][0]["kind"] == "external"
        assert "suppressions" not in second

    def test_render_is_deterministic_json(self):
        text = render_sarif(sample_report(), rules=all_rules())
        assert text == render_sarif(sample_report(), rules=all_rules())
        json.loads(text)  # parses
