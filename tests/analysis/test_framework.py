"""Framework-level tests: registry, suppression parsing, reporters, CLI."""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis import (
    PARSE_ERROR_RULE_ID,
    LintReport,
    ModuleUnderLint,
    Rule,
    Violation,
    lint_paths,
    lint_source,
    make_rules,
    register_rule,
    registered_rules,
)
from repro.analysis.cli import main
from repro.analysis.framework import _REGISTRY, iter_python_files
from repro.analysis.reporters import render_json, render_text

FIXTURES = Path(__file__).resolve().parent / "fixtures"
REPO_ROOT = Path(__file__).resolve().parents[2]


class TestRegistry:
    def test_all_five_project_rules_registered(self):
        assert set(registered_rules()) == {"D1", "V1", "T1", "L1", "E1"}

    def test_make_rules_default_instantiates_all(self):
        ids = sorted(rule.rule_id for rule in make_rules())
        assert ids == ["D1", "E1", "L1", "T1", "V1"]

    def test_make_rules_unknown_id_raises(self):
        with pytest.raises(KeyError, match="Z9"):
            make_rules(["D1", "Z9"])

    def test_duplicate_registration_raises(self):
        class Dup(Rule):
            rule_id = "D1"
            title = "impostor"

        with pytest.raises(ValueError, match="duplicate"):
            register_rule(Dup)
        assert _REGISTRY["D1"] is not Dup

    def test_missing_rule_id_raises(self):
        class Anonymous(Rule):
            pass

        with pytest.raises(ValueError, match="no rule_id"):
            register_rule(Anonymous)


class TestSuppressionParsing:
    def make(self, line: str) -> ModuleUnderLint:
        return ModuleUnderLint("x.py", f"x = 1{line}\n")

    def hit(self, module: ModuleUnderLint, rule_id: str) -> bool:
        violation = Violation(rule_id, "x.py", 1, 0, "msg")
        return module.is_suppressed(violation)

    def test_bare_ignore_suppresses_everything(self):
        module = self.make("  # lint: ignore")
        assert self.hit(module, "D1") and self.hit(module, "L1")

    def test_bracketed_ignore_is_rule_specific(self):
        module = self.make("  # lint: ignore[D1, V1]")
        assert self.hit(module, "D1")
        assert self.hit(module, "V1")
        assert not self.hit(module, "L1")

    def test_suppression_is_per_line(self):
        module = ModuleUnderLint("x.py", "x = 1  # lint: ignore\ny = 2\n")
        assert not module.is_suppressed(Violation("D1", "x.py", 2, 0, "m"))

    def test_dotted_name_anchors_at_repro(self):
        assert (
            ModuleUnderLint._dotted_name(Path("src/repro/mem/mmu.py"))
            == "repro.mem.mmu"
        )
        assert (
            ModuleUnderLint._dotted_name(Path("src/repro/obs/__init__.py"))
            == "repro.obs"
        )
        assert ModuleUnderLint._dotted_name(Path("scratch/tool.py")) == "tool"


class TestRunner:
    def test_syntax_error_becomes_e999(self):
        violations = lint_source("def broken(:\n", path="oops.py")
        assert len(violations) == 1
        assert violations[0].rule_id == PARSE_ERROR_RULE_ID
        assert violations[0].path == "oops.py"

    def test_iter_python_files_skips_pycache(self, tmp_path):
        (tmp_path / "a.py").write_text("x = 1\n")
        cache = tmp_path / "__pycache__"
        cache.mkdir()
        (cache / "a.cpython-312.pyc.py").write_text("x = 1\n")
        assert iter_python_files([tmp_path]) == [tmp_path / "a.py"]

    def test_iter_python_files_missing_path_raises(self):
        with pytest.raises(FileNotFoundError):
            iter_python_files([FIXTURES / "does_not_exist.py"])

    def test_lint_paths_aggregates_and_sorts(self):
        report = lint_paths([FIXTURES / "bad_e1.py", FIXTURES / "clean.py"])
        assert report.files_checked == 2
        assert not report.clean
        assert [v.rule_id for v in report.violations] == ["E1"]


class TestReporters:
    def sample_report(self) -> LintReport:
        return LintReport(
            files_checked=2,
            violations=[Violation("D1", "a.py", 3, 4, "wall clock")],
        )

    def test_render_text_lists_violations_and_summary(self):
        text = render_text(self.sample_report())
        assert "a.py:3:4: D1 wall clock" in text
        assert "1 violation" in text

    def test_render_text_clean(self):
        text = render_text(LintReport(files_checked=5, violations=[]))
        assert "clean" in text and "5" in text

    def test_render_json_round_trips(self):
        payload = json.loads(render_json(self.sample_report()))
        assert payload["files_checked"] == 2
        assert payload["clean"] is False
        assert payload["violations"] == [
            {
                "rule": "D1",
                "path": "a.py",
                "line": 3,
                "col": 4,
                "message": "wall clock",
                "severity": "error",
            }
        ]


class TestCli:
    def test_clean_path_exits_zero(self, capsys):
        assert main([str(FIXTURES / "clean.py")]) == 0
        assert "clean" in capsys.readouterr().out

    def test_violations_exit_one_with_rule_ids(self, capsys):
        assert main([str(FIXTURES / "bad_e1.py")]) == 1
        out = capsys.readouterr().out
        assert "E1" in out and "bad_e1.py:5" in out

    def test_json_format(self, capsys):
        assert main(["--format", "json", str(FIXTURES / "bad_e1.py")]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["violations"][0]["rule"] == "E1"
        assert payload["violations"][0]["line"] == 5

    def test_select_limits_rules(self, capsys):
        # bad_d1.py trips D1 only; selecting L1 alone must come back clean.
        assert main(["--select", "L1", str(FIXTURES / "bad_d1.py")]) == 0
        capsys.readouterr()

    def test_unknown_rule_id_is_usage_error(self, capsys):
        assert main(["--select", "Z9", str(FIXTURES / "clean.py")]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_missing_path_is_usage_error(self, capsys):
        assert main([str(FIXTURES / "no_such_file.py")]) == 2
        assert "error" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("D1", "V1", "T1", "L1", "E1"):
            assert rule_id in out

    def test_repro_lint_subcommand_delegates(self, capsys):
        from repro.cli import main as repro_main

        assert repro_main(["lint", str(FIXTURES / "clean.py")]) == 0
        capsys.readouterr()
        assert repro_main(["lint", str(FIXTURES / "bad_e1.py")]) == 1
        assert "E1" in capsys.readouterr().out
        assert repro_main(["lint", "--list-rules"]) == 0
        assert "D1" in capsys.readouterr().out

    def test_module_entry_point(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.analysis", str(FIXTURES / "bad_e1.py")],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
            env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 1
        assert "E1" in proc.stdout
