"""Per-rule tests: each fixture file seeds known violations at known lines.

Every rule is exercised three ways: the seeded violations are found with
the right rule ID and line number, the compliant constructs in the same
fixture are *not* flagged, and suppression comments behave per-line and
per-rule.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis import lint_paths, lint_source, make_rules

FIXTURES = Path(__file__).resolve().parent / "fixtures"


def findings(fixture: str, *rule_ids: str):
    """(rule_id, line) pairs reported for a fixture, sorted."""
    rules = make_rules(rule_ids) if rule_ids else None
    report = lint_paths([FIXTURES / fixture], rules=rules)
    return [(v.rule_id, v.line) for v in report.violations]


class TestD1Determinism:
    def test_seeded_violations_found_at_exact_lines(self):
        assert findings("bad_d1.py", "D1") == [
            ("D1", 9),   # time.time()
            ("D1", 13),  # time.perf_counter_ns()
            ("D1", 17),  # random.Random() without a seed
            ("D1", 21),  # random.randint on the global RNG
            ("D1", 25),  # np.random.rand global state
            ("D1", 29),  # np.random.default_rng() without a seed
        ]

    def test_seeded_rng_instances_not_flagged(self):
        assert lint_source(
            "import random\nrng = random.Random(7)\nx = rng.random()\n"
        ) == []
        assert lint_source(
            "import numpy as np\ngen = np.random.default_rng(7)\n"
        ) == []

    def test_wall_clock_through_datetime_flagged(self):
        violations = lint_source(
            "import datetime\nstamp = datetime.datetime.now()\n",
            rules=make_rules(["D1"]),
        )
        assert [(v.rule_id, v.line) for v in violations] == [("D1", 2)]


class TestV1VirtualTime:
    def test_wall_clock_into_ns_values(self):
        assert findings("bad_v1.py", "V1") == [
            ("V1", 6),  # start_ns = time.monotonic_ns()
            ("V1", 7),  # when_ns= keyword fed from time.time_ns()
            ("V1", 8),  # attribute deadline_ns from time.time()
        ]

    def test_ns_values_from_sim_clock_are_fine(self):
        violations = lint_source(
            "def f(sim):\n    start_ns = sim.clock.now\n    return start_ns\n",
            rules=make_rules(["V1"]),
        )
        assert violations == []

    def test_non_ns_names_not_flagged(self):
        violations = lint_source(
            "import time\nstamp = time.time()\n",
            rules=make_rules(["V1"]),
        )
        assert violations == []


class TestT1TracerGuard:
    def test_unguarded_constructions_found(self):
        assert findings("bad_t1.py", "T1") == [
            ("T1", 6),   # plain unguarded construction
            ("T1", 13),  # construction in the disabled branch
        ]

    def test_files_without_event_imports_ignored(self):
        violations = lint_source(
            "class WriteFault:\n    pass\n\nx = WriteFault()\n",
            rules=make_rules(["T1"]),
        )
        assert violations == []

    def test_module_alias_construction_flagged(self):
        source = (
            "from repro.obs import events\n"
            "def f(tracer, now):\n"
            "    tracer.emit(events.TLBFlush(t=now, entries=0))\n"
        )
        violations = lint_source(source, rules=make_rules(["T1"]))
        assert [(v.rule_id, v.line) for v in violations] == [("T1", 3)]


class TestL1Layering:
    def test_direct_indexing_outside_mem_flagged(self):
        assert findings("bad_l1.py", "L1") == [
            ("L1", 5),   # write_protected[pfn]
            ("L1", 9),   # dirty[:]
            ("L1", 13),  # shadow_dirty[pfn]
        ]

    def test_repro_mem_modules_exempt(self):
        source = "def scan(self):\n    self.dirty[:] = False\n"
        violations = lint_source(
            source,
            path="src/repro/mem/page_table.py",
            rules=make_rules(["L1"]),
        )
        assert violations == []


class TestE1BareAssert:
    def test_bare_assert_flagged(self):
        assert findings("bad_e1.py", "E1") == [("E1", 5)]

    def test_typed_raise_not_flagged(self):
        violations = lint_source(
            "def f(x):\n    if x < 0:\n        raise ValueError(x)\n",
            rules=make_rules(["E1"]),
        )
        assert violations == []


class TestSuppression:
    def test_suppression_comments(self):
        # Lines 6 (by ID), 10 (blanket), and 14 (multi-ID) are silenced;
        # line 18 names the wrong rule and stays flagged.
        assert findings("suppressed.py") == [("L1", 18)]

    def test_clean_fixture_is_clean(self):
        assert findings("clean.py") == []

    def test_fault_injection_idiom_is_clean(self):
        # The faults subsystem's plan-seeded RNG, virtual-clock reads,
        # and guarded SSDFault construction need zero suppressions.
        assert findings("seeded_faultplan.py") == []
