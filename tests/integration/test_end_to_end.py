"""End-to-end integration: full stack, paper-shaped assertions.

Each test here spans at least three subsystems (workload -> KV store ->
Viyojit -> MMU/SSD/battery) and asserts a *qualitative result from the
paper* rather than a unit behaviour.
"""

import pytest

from repro.bench.runner import ExperimentScale, run_workload
from repro.core.crash import CrashSimulator, full_backup_battery, viyojit_battery
from repro.power.power_model import PowerModel
from repro.workloads.ycsb import YCSB_A, YCSB_B, YCSB_C

SCALE = ExperimentScale(record_count=1200, operation_count=3600)


@pytest.fixture(scope="module")
def baseline_a():
    return run_workload(YCSB_A, SCALE, None)


@pytest.fixture(scope="module")
def viyojit_a_small():
    return run_workload(YCSB_A, SCALE, 2 / 17.5)


@pytest.fixture(scope="module")
def viyojit_a_large():
    return run_workload(YCSB_A, SCALE, 16 / 17.5)


class TestHeadlineResult:
    """The abstract's claim: ~11% battery, 7-25% overhead."""

    def test_overhead_in_paper_band(self, baseline_a, viyojit_a_small):
        overhead = (
            (baseline_a.throughput_kops - viyojit_a_small.throughput_kops)
            / baseline_a.throughput_kops
            * 100
        )
        assert 3.0 < overhead < 35.0

    def test_more_battery_less_overhead(self, viyojit_a_small, viyojit_a_large):
        assert viyojit_a_large.throughput_kops > viyojit_a_small.throughput_kops

    def test_battery_savings_match_budget(self):
        model = PowerModel()
        heap_bytes = SCALE.initial_heap_pages * 4096
        full = full_backup_battery(model, heap_bytes)
        small = viyojit_battery(model, int(heap_bytes * 2 / 17.5))
        assert small.nominal_joules < 0.15 * full.nominal_joules


class TestWorkloadOrdering:
    """Fig 7: write-heavy workloads pay more than read-heavy ones."""

    def test_a_worse_than_b_worse_than_c(self):
        overheads = {}
        for spec in (YCSB_A, YCSB_B, YCSB_C):
            baseline = run_workload(spec, SCALE, None)
            measured = run_workload(spec, SCALE, 2 / 17.5)
            overheads[spec.name] = (
                baseline.throughput_kops - measured.throughput_kops
            ) / baseline.throughput_kops
        assert overheads["YCSB-A"] > overheads["YCSB-B"] >= 0
        assert overheads["YCSB-A"] > overheads["YCSB-C"] >= 0


class TestTailLatency:
    """Fig 8: tails always above baseline, averages converge."""

    def test_p99_above_baseline_even_at_large_budget(
        self, baseline_a, viyojit_a_large
    ):
        assert (
            viyojit_a_large.latency["update"].p99_ms
            > baseline_a.latency["update"].p99_ms
        )

    def test_avg_converges_at_large_budget(self, baseline_a, viyojit_a_large):
        measured = viyojit_a_large.latency["update"].avg_ms
        base = baseline_a.latency["update"].avg_ms
        assert measured < base * 1.25


class TestDurabilityUnderLoad:
    """Durability holds at every point of a full YCSB run."""

    def test_crash_anywhere_in_ycsb_run(self):
        from repro.bench.runner import YCSBRunner, build_viyojit
        from repro.workloads.ycsb import generate_operations

        sim, system = build_viyojit(SCALE, 2 / 17.5)
        runner = YCSBRunner(sim, system, SCALE)
        runner.load()
        model = PowerModel()
        battery = viyojit_battery(
            model, system.config.dirty_budget_pages * system.region.page_size
        )
        crash = CrashSimulator(system, model, battery)
        ops = generate_operations(
            YCSB_A, SCALE.record_count, 1200, SCALE.value_size, seed=99
        )
        for index, op in enumerate(ops):
            runner._execute(op)
            if index % 200 == 0:
                report = crash.power_failure()
                assert report.survives, f"unsurvivable crash at op {index}"

    def test_budget_respected_through_run(self, viyojit_a_small):
        stats = viyojit_a_small.viyojit_stats
        budget = SCALE.budget_pages_for_fraction(2 / 17.5)
        assert stats["peak_dirty_pages"] <= budget


class TestWriteRates:
    """Fig 9: flush rates stay within what a modern SSD sustains."""

    def test_write_rate_sustainable(self, viyojit_a_small):
        # Paper: the worst observed average was ~200 MB/s against an SSD
        # rated far higher.  At our scale the criterion is the same: the
        # flush rate stays well under the device's bandwidth (2 GB/s).
        assert viyojit_a_small.avg_write_rate_mb_s < 2000 * 0.5

    def test_read_only_flushes_less(self, viyojit_a_small):
        read_only = run_workload(YCSB_C, SCALE, 2 / 17.5)
        assert read_only.ssd_bytes_written < viyojit_a_small.ssd_bytes_written
