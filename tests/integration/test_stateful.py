"""Hypothesis stateful testing of the Viyojit runtime.

A rule-based state machine drives an arbitrary interleaving of writes,
reads, time advancement, budget retuning, and drains against one Viyojit
instance, checking the durability invariants after *every* step.  This is
the strongest automated argument that the Fig 6 flow has no reachable
state violating the paper's guarantees.
"""

import hypothesis.strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule
from hypothesis import settings

from repro.core.config import ViyojitConfig
from repro.core.crash import CrashSimulator, viyojit_battery
from repro.core.runtime import Viyojit
from repro.power.power_model import PowerModel
from repro.sim.events import Simulation

PAGE = 4096
REGION_PAGES = 96
HEAP_PAGES = 64
BUDGET = 10


class ViyojitMachine(RuleBasedStateMachine):
    def __init__(self) -> None:
        super().__init__()
        self.sim = Simulation()
        self.system = Viyojit(
            self.sim,
            num_pages=REGION_PAGES,
            config=ViyojitConfig(dirty_budget_pages=BUDGET),
        )
        self.system.start()
        self.mapping = self.system.mmap(HEAP_PAGES * PAGE)
        self.model = {}  # addr -> last byte written
        model_battery = viyojit_battery(PowerModel(), BUDGET * PAGE)
        self.crash = CrashSimulator(self.system, PowerModel(), model_battery)

    @rule(
        page=st.integers(0, HEAP_PAGES - 1),
        offset=st.integers(0, PAGE - 9),
        byte=st.integers(0, 255),
    )
    def write(self, page, offset, byte):
        addr = self.mapping.base_addr + page * PAGE + offset
        self.system.write(addr, bytes([byte]) * 8)
        for i in range(8):
            self.model[addr + i] = byte

    @rule(page=st.integers(0, HEAP_PAGES - 1), offset=st.integers(0, PAGE - 9))
    def read(self, page, offset):
        addr = self.mapping.base_addr + page * PAGE + offset
        got = self.system.read(addr, 8)
        for i in range(8):
            expected = self.model.get(addr + i, 0)
            assert got[i] == expected

    @rule(epochs=st.integers(1, 5))
    def let_time_pass(self, epochs):
        self.sim.run_until(
            self.sim.now + epochs * self.system.config.epoch_ns
        )

    @rule(new_budget=st.integers(4, BUDGET))
    def retune_budget(self, new_budget):
        self.system.set_dirty_budget(new_budget)
        self.system.drain_to_budget()

    @rule()
    def restore_full_budget(self):
        self.system.set_dirty_budget(BUDGET)

    @rule()
    def drain(self):
        self.system.drain()
        assert self.system.dirty_count == 0

    @invariant()
    def budget_bound_holds(self):
        assert self.system.dirty_count <= max(
            self.system.dirty_budget_pages, BUDGET
        )

    @invariant()
    def crash_survivable(self):
        # The provisioned battery always covers the *original* budget;
        # retuning only ever lowers the dirty bound below it.
        assert self.crash.power_failure().survives

    @invariant()
    def clean_pages_durable(self):
        for pfn, version in self.system.region.touched_pages():
            if pfn not in self.system.tracker:
                assert self.system.backing.holds_version(pfn, version)


ViyojitMachine.TestCase.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)
TestViyojitStateful = ViyojitMachine.TestCase
