"""Smoke tests: every example script runs to completion.

Examples are executed in-process (runpy) with their internal scales; each
asserts its own correctness conditions, so completion == passing.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str, argv=None) -> None:
    old_argv = sys.argv
    sys.argv = [name] + (argv or [])
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old_argv


def test_examples_directory_complete():
    names = {path.name for path in EXAMPLES.glob("*.py")}
    assert {
        "quickstart.py",
        "kvstore_ycsb.py",
        "trace_analysis.py",
        "crash_recovery.py",
        "battery_provisioning.py",
        "warm_restart.py",
        "multi_tenant.py",
    } <= names


def test_quickstart(capsys):
    run_example("quickstart.py")
    out = capsys.readouterr().out
    assert "never exceeded: True" in out
    assert "expected 123456" in out


def test_crash_recovery(capsys):
    run_example("crash_recovery.py")
    out = capsys.readouterr().out
    assert "SURVIVES" in out
    assert "every key-value pair matches" in out


def test_battery_provisioning(capsys):
    run_example("battery_provisioning.py")
    out = capsys.readouterr().out
    assert "kJ" in out
    assert "durability preserved" in out


def test_warm_restart(capsys):
    run_example("warm_restart.py")
    out = capsys.readouterr().out
    assert "recovered from NVM" in out
    assert "faster" in out


def test_multi_tenant(capsys):
    run_example("multi_tenant.py")
    out = capsys.readouterr().out
    assert "batch bursting" in out
    assert "survivable at every checkpoint" in out


def test_write_skew_heatmap(capsys):
    run_example("write_skew_heatmap.py")
    out = capsys.readouterr().out
    assert "write heat across the KV heap" in out
    assert "pages needed" in out


@pytest.mark.slow
def test_trace_analysis(capsys):
    run_example("trace_analysis.py", ["search_index"])
    out = capsys.readouterr().out
    assert "battery" in out.lower()


@pytest.mark.slow
def test_kvstore_ycsb(capsys):
    run_example("kvstore_ycsb.py")
    out = capsys.readouterr().out
    assert "YCSB-A" in out and "overhead_pct" in out
