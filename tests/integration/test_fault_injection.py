"""Fault-injection integration tests.

Adversarial scenarios around the runtime's edge cases: bursts that slam
into the budget, writes racing in-flight flushes, battery degradation
mid-run, and pathological budget sizes.
"""

import random

import pytest

from repro.core.config import ViyojitConfig
from repro.core.crash import CrashSimulator, viyojit_battery
from repro.core.runtime import Viyojit
from repro.power.power_model import PowerModel
from repro.sim.events import Simulation
from repro.storage.ssd import SSD
from tests.conftest import make_viyojit

PAGE = 4096


class TestWriteBursts:
    def test_burst_larger_than_budget(self, sim):
        """A burst of new dirty pages far beyond the budget must be
        absorbed by synchronous eviction without ever overshooting."""
        budget = 4
        system = make_viyojit(sim, num_pages=128, budget=budget, proactive=False)
        mapping = system.mmap(64 * PAGE)
        for page in range(64):
            system.write(mapping.base_addr + page * PAGE, b"burst")
            assert system.dirty_count <= budget
        assert system.stats.sync_evictions >= 60

    def test_burst_with_slow_ssd(self):
        """A slow SSD stretches eviction waits but never breaks the bound."""
        sim = Simulation()
        slow = SSD(write_bandwidth_bytes_per_s=10_000_000, write_latency_ns=2_000_000)
        system = Viyojit(
            sim,
            num_pages=128,
            config=ViyojitConfig(dirty_budget_pages=4),
            ssd=slow,
        )
        system.start()
        mapping = system.mmap(32 * PAGE)
        for page in range(32):
            system.write(mapping.base_addr + page * PAGE, b"x")
            assert system.dirty_count <= 4
        assert system.stats.blocked_time_ns > 0


class TestBudgetOfOne:
    def test_minimum_budget_still_works(self, sim):
        system = make_viyojit(sim, num_pages=64, budget=1)
        mapping = system.mmap(16 * PAGE)
        for page in range(16):
            system.write(mapping.base_addr + page * PAGE, bytes([page]))
            assert system.dirty_count <= 1
        system.drain()
        for pfn, version in system.region.touched_pages():
            assert system.backing.holds_version(pfn, version)

    def test_data_correct_under_budget_of_one(self, sim):
        system = make_viyojit(sim, num_pages=64, budget=1)
        mapping = system.mmap(8 * PAGE)
        rng = random.Random(3)
        expected = {}
        for _ in range(200):
            page = rng.randrange(8)
            data = bytes([rng.randrange(256)]) * 32
            system.write(mapping.base_addr + page * PAGE, data)
            expected[page] = data
        for page, data in expected.items():
            assert system.read(mapping.base_addr + page * PAGE, 32) == data


class TestRacingWrites:
    def test_write_during_flush_preserved(self, sim):
        """A write racing an in-flight flush must never be lost."""
        system = make_viyojit(sim, num_pages=64, budget=8, proactive=False)
        mapping = system.mmap(8 * PAGE)
        system.write(mapping.base_addr, b"version-1")
        pfn = mapping.base_page
        cost = system.flusher.issue(pfn)
        sim.clock.advance(cost)
        # Write while the IO is in flight: traps, waits, re-dirties.
        system.write(mapping.base_addr, b"version-2")
        system.drain()
        assert system.backing.read(pfn)[:9] == b"version-2"

    def test_interleaved_writes_and_flushes_converge(self, sim):
        system = make_viyojit(sim, num_pages=128, budget=6)
        mapping = system.mmap(32 * PAGE)
        rng = random.Random(4)
        for round_num in range(50):
            for _ in range(10):
                page = rng.randrange(32)
                system.write(
                    mapping.base_addr + page * PAGE,
                    round_num.to_bytes(4, "little"),
                )
        system.drain()
        for pfn, version in system.region.touched_pages():
            assert system.backing.holds_version(pfn, version)
            assert system.backing.read(pfn) == system.region.page_bytes(pfn)


class TestBatteryDegradation:
    def test_retuned_budget_restores_safety(self, sim):
        """Section 8's scenario: the battery degrades mid-run; retuning
        the dirty budget restores the durability guarantee."""
        model = PowerModel()
        system = make_viyojit(sim, num_pages=256, budget=32)
        battery = viyojit_battery(model, 32 * PAGE)
        crash = CrashSimulator(system, model, battery)
        mapping = system.mmap(64 * PAGE)
        for page in range(32):
            system.write(mapping.base_addr + page * PAGE, b"pre-degradation")
        assert crash.power_failure().survives

        battery.degrade(0.5)
        # With 32 dirty pages and half the energy, we are now unsafe.
        assert not crash.power_failure().survives

        # Retune: the new budget is what the degraded battery supports.
        new_budget = crash.retune_budget()
        assert new_budget < 32
        # Drain down to the new budget (the runtime reaction in section 8).
        while system.dirty_count > new_budget:
            victim = system._next_victim()
            while not system.flusher.has_slot():
                system._wait_until(system.flusher.earliest_completion())
            cost = system.flusher.issue(victim)
            sim.clock.advance(cost)
            system._wait_until(system.flusher.completion_time(victim))
        assert crash.power_failure().survives


class TestEpochRobustness:
    def test_many_idle_epochs(self, sim):
        """Epochs with zero activity must not drift or misbehave."""
        system = make_viyojit(sim, num_pages=64, budget=8)
        sim.run_until(sim.now + 50 * system.config.epoch_ns)
        assert system.stats.epochs >= 45
        assert system.dirty_count == 0

    def test_history_epoch_count_advances(self, sim):
        system = make_viyojit(sim, num_pages=64, budget=8)
        sim.run_until(sim.now + 10 * system.config.epoch_ns)
        assert system.history.epoch == system.stats.epochs
