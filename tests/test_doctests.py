"""Run the doctests embedded in module docstrings.

The package-level quick tour and the clock example are executable
documentation; this keeps them honest.
"""

import doctest

import pytest

import repro
import repro.sim.clock


@pytest.mark.parametrize("module", [repro, repro.sim.clock])
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failures in {module}"
    assert results.attempted > 0, f"no doctests found in {module.__name__}"
