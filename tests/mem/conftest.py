"""Kernel-parametrized fixtures: every mem unit test runs on both kernels.

The object kernel and the struct-of-arrays kernel implement the same
contract; the unit tests in this package take the class under test from
these fixtures so each test body executes twice, once per kernel.  The
differential harness in ``test_kernel_equivalence.py`` goes further and
runs both side by side inside a single test.
"""

from __future__ import annotations

import pytest

from repro.mem.page_table import PageTable as ObjectPageTable
from repro.mem.soa import SoAPageTable, SoATLB
from repro.mem.tlb import TLB as ObjectTLB

PAGE_TABLE_CLASSES = {"object": ObjectPageTable, "soa": SoAPageTable}
TLB_CLASSES = {"object": ObjectTLB, "soa": SoATLB}


@pytest.fixture(params=sorted(PAGE_TABLE_CLASSES))
def kernel(request):
    return request.param


@pytest.fixture
def page_table_cls(kernel):
    return PAGE_TABLE_CLASSES[kernel]


@pytest.fixture
def tlb_cls(kernel):
    return TLB_CLASSES[kernel]
