"""Differential equivalence: the SoA kernel IS the object kernel.

The struct-of-arrays kernel may only change wall-clock time.  Every
simulated quantity — costs, counters, fault outcomes, eviction choices,
epoch scans, golden traces, crashfind checksums — must be byte-identical
to the object kernel's.  This module pins that at four levels:

1. **Substrate step harness** (hypothesis): one seeded op stream drives
   an object-kernel MMU stack and an SoA stack side by side; after every
   single op the return values and the complete observable state of both
   stacks must match exactly.
2. **Runtime**: identical write sequences against two full ``Viyojit``
   systems (one per kernel) produce identical stats, clocks, and — the
   ranking check — identical victim-queue orderings.
3. **Macro workloads**: ``run_workload`` snapshots agree across kernels,
   including with every fast path monkeypatched off (the deopt chain of
   ``tests/perf/test_batched_equivalence.py``).
4. **Artifacts**: golden traces rendered under ``REPRO_KERNEL=soa``
   equal the committed object-kernel fixtures byte-for-byte, and a
   sampled crashfind exploration checksums identically under both.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.runner import ExperimentScale, run_workload
from repro.core.config import ViyojitConfig
from repro.core.runtime import Viyojit
from repro.faults.explorer import explore_crash_points
from repro.mem.kernel import KERNELS, make_mmu, make_page_table, make_tlb
from repro.mem.machine import MachineModel
from repro.obs.harness import TraceWorkload
from repro.sim.events import Simulation
from repro.workloads.ycsb import YCSB_WORKLOADS

from tests.obs.regen_golden import GOLDEN_SPECS, fixture_path, render
from tests.perf.test_sim_invisibility import _disable_fast_paths, _snapshot

NUM_PAGES = 16
TLB_CAPACITY = 4


# --------------------------------------------------------------------------
# Level 1: the substrate step harness.


class _Stack:
    """One kernel's page-table + TLB + MMU triple under differential test."""

    def __init__(self, kernel: str, hardware: bool) -> None:
        machine = MachineModel()
        self.page_table = make_page_table(NUM_PAGES, kernel)
        self.tlb = make_tlb(NUM_PAGES, TLB_CAPACITY, kernel)
        self.mmu = make_mmu(self.page_table, self.tlb, machine, hardware=hardware)

    def state(self) -> dict:
        """Every externally observable fact about the stack."""
        pt, tlb, mmu = self.page_table, self.tlb, self.mmu
        state = {
            "pt.write_protected": pt.write_protected.tolist(),
            "pt.dirty": pt.dirty.tolist(),
            "pt.shadow_dirty": pt.shadow_dirty.tolist(),
            "pt.dirty_count": pt.dirty_count,
            "pt.shadow_dirty_count": pt.shadow_dirty_count,
            "pt.protected_count": pt.protected_count(),
            "pt.walks": pt.walks,
            "tlb.resident": tlb.resident,
            "tlb.hits": tlb.hits,
            "tlb.misses": tlb.misses,
            "tlb.flushes": tlb.flushes,
            "tlb.single_invalidations": tlb.single_invalidations,
            "tlb.capacity_evictions": tlb.capacity_evictions,
            "tlb.membership": [pfn in tlb for pfn in range(NUM_PAGES)],
            "tlb.dirty_cached": [
                tlb.dirty_cached(pfn) for pfn in range(NUM_PAGES)
            ],
            "mmu.read_accesses": mmu.read_accesses,
            "mmu.write_accesses": mmu.write_accesses,
            "mmu.faults": mmu.faults,
        }
        if hasattr(mmu, "dirty_counter"):
            state["mmu.dirty_counter"] = mmu.dirty_counter
            state["mmu.interrupts_raised"] = mmu.interrupts_raised
        return state

    def apply(self, op: tuple) -> object:
        """Apply one op; the return value is part of the comparison."""
        name, pfn = op
        if name == "read":
            return self.mmu.read_cost(pfn)
        if name == "write":
            outcome = self.mmu.write_access(pfn)
            return (outcome.cost_ns, outcome.faulted, outcome.newly_dirtied)
        if name == "probe":
            return self.mmu.write_probe(pfn)
        if name == "protect":
            return self.mmu.protect_page(pfn)
        if name == "unprotect":
            return self.mmu.unprotect_page(pfn)
        if name == "lookup":
            return self.tlb.lookup(pfn)
        if name == "invalidate":
            self.tlb.invalidate(pfn)
            return None
        if name == "flush_all":
            self.tlb.flush_all()
            return None
        if name == "scan_flush":
            updated, cost = self.mmu.epoch_scan(flush_tlb=True)
            return (updated.tolist(), cost)
        if name == "scan_noflush":
            updated, cost = self.mmu.epoch_scan(flush_tlb=False)
            return (updated.tolist(), cost)
        if name == "page_cleaned":
            cleaned = getattr(self.mmu, "page_cleaned", None)
            if cleaned is not None:
                cleaned(pfn)
            return None
        raise AssertionError(f"unknown op {name!r}")


_pfns = st.integers(0, NUM_PAGES - 1)
_ops = st.lists(
    st.one_of(
        st.tuples(st.just("read"), _pfns),
        st.tuples(st.just("write"), _pfns),
        st.tuples(st.just("probe"), _pfns),
        st.tuples(st.just("protect"), _pfns),
        st.tuples(st.just("unprotect"), _pfns),
        st.tuples(st.just("lookup"), _pfns),
        st.tuples(st.just("invalidate"), _pfns),
        st.tuples(st.just("flush_all"), st.just(0)),
        st.tuples(st.just("scan_flush"), st.just(0)),
        st.tuples(st.just("scan_noflush"), st.just(0)),
        st.tuples(st.just("page_cleaned"), _pfns),
    ),
    max_size=300,
)


@pytest.mark.parametrize("hardware", [False, True], ids=["software", "hardware"])
@settings(max_examples=150, deadline=None)
@given(ops=_ops)
def test_step_for_step_substrate_equivalence(hardware, ops):
    obj = _Stack("object", hardware)
    soa = _Stack("soa", hardware)
    assert obj.state() == soa.state()
    for index, op in enumerate(ops):
        assert obj.apply(op) == soa.apply(op), (index, op)
        assert obj.state() == soa.state(), (index, op)


@pytest.mark.parametrize("hardware", [False, True], ids=["software", "hardware"])
def test_dense_seeded_stream_equivalence(hardware):
    """A long seeded stream, far past the TLB's eviction horizon."""
    rng = random.Random(20260808)
    names = (
        "read", "write", "probe", "protect", "unprotect", "lookup",
        "invalidate", "flush_all", "scan_flush", "scan_noflush",
        "page_cleaned",
    )
    obj = _Stack("object", hardware)
    soa = _Stack("soa", hardware)
    for step in range(30_000):
        op = (rng.choice(names), rng.randrange(NUM_PAGES))
        assert obj.apply(op) == soa.apply(op), (step, op)
    assert obj.state() == soa.state()


def test_exceptions_match_across_kernels():
    obj = _Stack("object", hardware=False)
    soa = _Stack("soa", hardware=False)
    for bad in (-1, NUM_PAGES, NUM_PAGES + 7):
        errors = []
        for stack in (obj, soa):
            with pytest.raises(IndexError) as exc:
                stack.tlb.lookup(bad)
            errors.append(str(exc.value))
            with pytest.raises(IndexError) as exc:
                stack.page_table.set_dirty(bad)
            errors.append(str(exc.value))
        assert errors[0:2] == errors[2:4]


# --------------------------------------------------------------------------
# Level 2: full runtimes, including victim-ranking order.


def _build_viyojit(kernel: str, monkeypatch) -> Viyojit:
    monkeypatch.setenv("REPRO_KERNEL", kernel)
    system = Viyojit(
        sim=Simulation(),
        num_pages=96,
        config=ViyojitConfig(dirty_budget_pages=8),
    )
    system.start()
    return system


def test_runtime_and_victim_ranking_equivalence(monkeypatch):
    systems = {k: _build_viyojit(k, monkeypatch) for k in KERNELS}
    mappings = {
        k: system.mmap(64 * system.region.page_size)
        for k, system in systems.items()
    }
    rng = random.Random(99)
    offsets = [
        rng.randrange(64) * 4096 + rng.randrange(4000) for _ in range(4_000)
    ]
    for index, offset in enumerate(offsets):
        payload = b"x%6d" % index
        for k, system in systems.items():
            system.write(mappings[k].addr(offset), payload)
        if index % 257 == 0:
            clocks = {k: s.sim.now for k, s in systems.items()}
            assert len(set(clocks.values())) == 1, (index, clocks)
    obj, soa = systems["object"], systems["soa"]
    assert obj.sim.now == soa.sim.now
    assert obj.stats == soa.stats
    assert obj.page_table.dirty_count == soa.page_table.dirty_count
    assert (obj.tlb.hits, obj.tlb.misses, obj.tlb.capacity_evictions) == (
        soa.tlb.hits, soa.tlb.misses, soa.tlb.capacity_evictions
    )
    # The ranking check: rebuild both victim queues from scratch and
    # compare the *order*, not just the set.
    for system in systems.values():
        system._rebuild_victim_queue()
    assert list(obj._victim_queue) == list(soa._victim_queue)


# --------------------------------------------------------------------------
# Level 3: macro workloads, optimized and deoptimized.

SCALE = ExperimentScale(record_count=800, operation_count=2_500)


def _run_under_kernel(monkeypatch, kernel, *args, **kwargs):
    monkeypatch.setenv("REPRO_KERNEL", kernel)
    return _snapshot(run_workload(*args, **kwargs))


@pytest.mark.parametrize("budget_fraction", [0.175, None],
                         ids=["viyojit", "nvdram"])
def test_workload_snapshots_identical_across_kernels(
    monkeypatch, budget_fraction
):
    spec = YCSB_WORKLOADS["YCSB-A"]
    snapshots = {
        kernel: _run_under_kernel(
            monkeypatch, kernel, spec, SCALE, budget_fraction
        )
        for kernel in KERNELS
    }
    assert snapshots["object"] == snapshots["soa"]


def test_soa_kernel_is_simulation_invisible_when_deoptimized(monkeypatch):
    """The deopt chain composes with the kernel switch: object and SoA,
    optimized and with every fast path off, all four snapshots agree."""
    spec = YCSB_WORKLOADS["YCSB-A"]
    optimized = {
        kernel: _run_under_kernel(monkeypatch, kernel, spec, SCALE, 0.175)
        for kernel in KERNELS
    }
    _disable_fast_paths(monkeypatch)
    deoptimized = {
        kernel: _run_under_kernel(monkeypatch, kernel, spec, SCALE, 0.175)
        for kernel in KERNELS
    }
    assert (
        optimized["object"]
        == optimized["soa"]
        == deoptimized["object"]
        == deoptimized["soa"]
    )


# --------------------------------------------------------------------------
# Level 4: committed artifacts.


@pytest.mark.parametrize("name", sorted(GOLDEN_SPECS))
def test_golden_traces_render_identically_under_soa(monkeypatch, name):
    """The committed fixtures were generated by the object kernel; the
    SoA kernel must reproduce them byte-for-byte."""
    monkeypatch.setenv("REPRO_KERNEL", "soa")
    assert render(name) == fixture_path(name).read_text(encoding="utf-8")


@pytest.mark.parametrize("system", ["viyojit", "hardware"])
def test_crashfind_checksums_identical_across_kernels(monkeypatch, system):
    """A sampled crash-point exploration — every probed boundary's
    recovery outcome — checksums identically under both kernels."""
    spec = TraceWorkload(system=system, ops=300)
    reports = {}
    for kernel in KERNELS:
        monkeypatch.setenv("REPRO_KERNEL", kernel)
        reports[kernel] = explore_crash_points(spec, stride=5)
    assert reports["object"].checksum() == reports["soa"].checksum()
    assert reports["object"].as_dict() == reports["soa"].as_dict()
    assert reports["object"].all_ok
