"""Unit tests for the TLB: hits, eviction, dirty caching, invalidation.

Run against both kernels via the ``tlb_cls`` fixture; the capacity
boundary is probed extra hard because the SoA kernel's vectorized LRU
(argmin over touch stamps) must evict exactly the pages the object
kernel's ordered dict evicts.
"""

import pytest


class TestLookup:
    def test_first_access_misses(self, tlb_cls):
        tlb = tlb_cls(num_pages=16, capacity=4)
        assert tlb.lookup(0) is False
        assert tlb.misses == 1

    def test_second_access_hits(self, tlb_cls):
        tlb = tlb_cls(num_pages=16, capacity=4)
        tlb.lookup(0)
        assert tlb.lookup(0) is True
        assert tlb.hits == 1

    def test_contains(self, tlb_cls):
        tlb = tlb_cls(num_pages=16, capacity=4)
        tlb.lookup(3)
        assert 3 in tlb
        assert 4 not in tlb

    def test_out_of_range(self, tlb_cls):
        tlb = tlb_cls(num_pages=16, capacity=4)
        with pytest.raises(IndexError):
            tlb.lookup(16)

    def test_invalid_construction(self, tlb_cls):
        with pytest.raises(ValueError):
            tlb_cls(num_pages=0)
        with pytest.raises(ValueError):
            tlb_cls(num_pages=4, capacity=0)


class TestCapacityEviction:
    def test_capacity_bounds_residency(self, tlb_cls):
        tlb = tlb_cls(num_pages=64, capacity=4)
        for pfn in range(10):
            tlb.lookup(pfn)
        assert tlb.resident <= 4

    def test_lru_evicts_least_recently_used(self, tlb_cls):
        tlb = tlb_cls(num_pages=64, capacity=2)
        tlb.lookup(0)
        tlb.lookup(1)
        tlb.lookup(2)  # evicts 0
        assert 0 not in tlb
        assert 1 in tlb
        assert 2 in tlb

    def test_touch_refreshes_recency(self, tlb_cls):
        """Hot pages stay resident — load-bearing for the 6.3 ablation."""
        tlb = tlb_cls(num_pages=64, capacity=2)
        tlb.lookup(0)
        tlb.lookup(1)
        tlb.lookup(0)  # refresh 0; 1 is now LRU
        tlb.lookup(2)  # evicts 1, not 0
        assert 0 in tlb
        assert 1 not in tlb

    def test_eviction_counter(self, tlb_cls):
        tlb = tlb_cls(num_pages=64, capacity=1)
        tlb.lookup(0)
        tlb.lookup(1)
        assert tlb.capacity_evictions == 1

    def test_evicted_entry_loses_dirty_cache(self, tlb_cls):
        tlb = tlb_cls(num_pages=64, capacity=1)
        tlb.lookup(0)
        tlb.cache_dirty(0)
        tlb.lookup(1)  # evicts 0
        assert tlb.dirty_cached(0) is False

    def test_fill_to_exact_capacity_evicts_nothing(self, tlb_cls):
        """The boundary itself: capacity residents, zero evictions."""
        tlb = tlb_cls(num_pages=64, capacity=4)
        for pfn in range(4):
            tlb.lookup(pfn)
        assert tlb.resident == 4
        assert tlb.capacity_evictions == 0
        assert all(pfn in tlb for pfn in range(4))

    def test_one_past_capacity_evicts_exactly_one(self, tlb_cls):
        tlb = tlb_cls(num_pages=64, capacity=4)
        for pfn in range(5):
            tlb.lookup(pfn)
        assert tlb.resident == 4
        assert tlb.capacity_evictions == 1
        assert 0 not in tlb  # the oldest untouched entry
        assert all(pfn in tlb for pfn in range(1, 5))

    def test_invalidation_reopens_capacity_without_eviction(self, tlb_cls):
        """A freed slot absorbs the next miss; LRU stays intact."""
        tlb = tlb_cls(num_pages=64, capacity=4)
        for pfn in range(4):
            tlb.lookup(pfn)
        tlb.invalidate(2)
        tlb.lookup(9)  # takes the freed slot, evicts nobody
        assert tlb.capacity_evictions == 0
        assert tlb.resident == 4
        tlb.lookup(10)  # now full again: evicts 0, the true LRU
        assert tlb.capacity_evictions == 1
        assert 0 not in tlb
        assert all(pfn in tlb for pfn in (1, 3, 9, 10))

    def test_eviction_order_after_flush_restarts_clean(self, tlb_cls):
        tlb = tlb_cls(num_pages=64, capacity=2)
        tlb.lookup(0)
        tlb.lookup(1)
        tlb.flush_all()
        tlb.lookup(5)
        tlb.lookup(6)
        tlb.lookup(7)  # evicts 5 — pre-flush history must not leak in
        assert 5 not in tlb
        assert 6 in tlb and 7 in tlb

    def test_eviction_storm_at_capacity_one(self, tlb_cls):
        tlb = tlb_cls(num_pages=64, capacity=1)
        for pfn in range(10):
            tlb.lookup(pfn)
        assert tlb.resident == 1
        assert 9 in tlb
        assert tlb.capacity_evictions == 9


class TestDirtyCaching:
    def test_dirty_not_cached_initially(self, tlb_cls):
        tlb = tlb_cls(num_pages=8, capacity=4)
        tlb.lookup(0)
        assert tlb.dirty_cached(0) is False

    def test_cache_dirty(self, tlb_cls):
        tlb = tlb_cls(num_pages=8, capacity=4)
        tlb.lookup(0)
        tlb.cache_dirty(0)
        assert tlb.dirty_cached(0) is True

    def test_cache_dirty_on_uncached_page_is_noop(self, tlb_cls):
        tlb = tlb_cls(num_pages=8, capacity=4)
        tlb.cache_dirty(5)
        assert tlb.dirty_cached(5) is False

    def test_flush_clears_dirty_cache(self, tlb_cls):
        tlb = tlb_cls(num_pages=8, capacity=4)
        tlb.lookup(0)
        tlb.cache_dirty(0)
        tlb.flush_all()
        assert tlb.dirty_cached(0) is False

    def test_hit_dirty_only_counts_on_success(self, tlb_cls):
        tlb = tlb_cls(num_pages=8, capacity=4)
        tlb.lookup(0)
        assert tlb.hit_dirty(0) is False  # resident but clean: no probe hit
        assert tlb.hits == 0
        tlb.cache_dirty(0)
        assert tlb.hit_dirty(0) is True
        assert tlb.hits == 1


class TestInvalidation:
    def test_single_invalidation(self, tlb_cls):
        tlb = tlb_cls(num_pages=8, capacity=4)
        tlb.lookup(0)
        tlb.invalidate(0)
        assert 0 not in tlb
        assert tlb.single_invalidations == 1

    def test_invalidate_uncached_is_safe(self, tlb_cls):
        tlb = tlb_cls(num_pages=8, capacity=4)
        tlb.invalidate(7)
        assert tlb.resident == 0

    def test_flush_all_resets_everything(self, tlb_cls):
        tlb = tlb_cls(num_pages=8, capacity=4)
        for pfn in range(4):
            tlb.lookup(pfn)
        tlb.flush_all()
        assert tlb.resident == 0
        assert tlb.flushes == 1
        for pfn in range(4):
            assert pfn not in tlb

    def test_reinsertion_after_flush_works(self, tlb_cls):
        tlb = tlb_cls(num_pages=8, capacity=4)
        tlb.lookup(0)
        tlb.flush_all()
        assert tlb.lookup(0) is False  # miss again
        assert tlb.lookup(0) is True

    def test_invalidate_then_lookup_misses(self, tlb_cls):
        tlb = tlb_cls(num_pages=8, capacity=4)
        tlb.lookup(2)
        tlb.invalidate(2)
        assert tlb.lookup(2) is False

    def test_resident_count_accurate_after_mixed_ops(self, tlb_cls):
        tlb = tlb_cls(num_pages=32, capacity=8)
        for pfn in range(6):
            tlb.lookup(pfn)
        tlb.invalidate(0)
        tlb.invalidate(3)
        assert tlb.resident == 4
