"""Unit tests for the NV-DRAM region's data plane."""

import pytest

from repro.mem.nvdram import NVDRAMRegion


class TestConstruction:
    def test_size(self):
        region = NVDRAMRegion(num_pages=4, page_size=4096)
        assert region.size == 16384

    def test_invalid_page_count(self):
        with pytest.raises(ValueError):
            NVDRAMRegion(0)

    def test_non_power_of_two_page_size(self):
        with pytest.raises(ValueError):
            NVDRAMRegion(4, page_size=1000)


class TestAddressing:
    def test_page_of(self):
        region = NVDRAMRegion(4, page_size=4096)
        assert region.page_of(0) == 0
        assert region.page_of(4095) == 0
        assert region.page_of(4096) == 1

    def test_page_of_out_of_range(self):
        region = NVDRAMRegion(4)
        with pytest.raises(IndexError):
            region.page_of(region.size)

    def test_pages_of_range_single(self):
        region = NVDRAMRegion(4)
        assert list(region.pages_of_range(100, 10)) == [0]

    def test_pages_of_range_spanning(self):
        region = NVDRAMRegion(4)
        assert list(region.pages_of_range(4090, 10)) == [0, 1]

    def test_pages_of_range_empty(self):
        region = NVDRAMRegion(4)
        assert list(region.pages_of_range(0, 0)) == []

    def test_pages_of_range_negative_length(self):
        region = NVDRAMRegion(4)
        with pytest.raises(ValueError):
            region.pages_of_range(0, -1)


class TestReadWrite:
    def test_unwritten_reads_as_zero(self):
        region = NVDRAMRegion(2)
        assert region.read(10, 4) == b"\x00\x00\x00\x00"

    def test_roundtrip(self):
        region = NVDRAMRegion(2)
        region.write(100, b"hello")
        assert region.read(100, 5) == b"hello"

    def test_write_spanning_pages(self):
        region = NVDRAMRegion(2)
        data = bytes(range(20))
        region.write(4090, data)
        assert region.read(4090, 20) == data

    def test_write_out_of_range(self):
        region = NVDRAMRegion(1)
        with pytest.raises(IndexError):
            region.write(4090, b"too long for page")

    def test_read_out_of_range(self):
        region = NVDRAMRegion(1)
        with pytest.raises(IndexError):
            region.read(4000, 200)

    def test_overwrite(self):
        region = NVDRAMRegion(1)
        region.write(0, b"aaaa")
        region.write(2, b"bb")
        assert region.read(0, 4) == b"aabb"


class TestVersions:
    def test_version_bumps_on_write(self):
        region = NVDRAMRegion(2)
        assert region.page_version[0] == 0
        region.write(0, b"x")
        assert region.page_version[0] == 1
        region.write(0, b"y")
        assert region.page_version[0] == 2

    def test_spanning_write_bumps_both(self):
        region = NVDRAMRegion(2)
        region.write(4090, bytes(10))
        assert region.page_version[0] == 1
        assert region.page_version[1] == 1

    def test_touched_pages(self):
        region = NVDRAMRegion(4)
        region.write(0, b"a")
        region.write(2 * 4096, b"b")
        touched = list(region.touched_pages())
        assert touched == [(0, 1), (2, 1)]


class TestPageSnapshots:
    def test_page_bytes_of_untouched(self):
        region = NVDRAMRegion(2)
        assert region.page_bytes(1) == bytes(4096)

    def test_page_bytes_reflects_writes(self):
        region = NVDRAMRegion(2)
        region.write(4096 + 5, b"zz")
        page = region.page_bytes(1)
        assert page[5:7] == b"zz"
        assert len(page) == 4096

    def test_load_page(self):
        region = NVDRAMRegion(2)
        data = bytes([7]) * 4096
        region.load_page(0, data, version=9)
        assert region.page_bytes(0) == data
        assert region.page_version[0] == 9

    def test_load_page_wrong_size(self):
        region = NVDRAMRegion(2)
        with pytest.raises(ValueError):
            region.load_page(0, b"short", 1)

    def test_page_bytes_out_of_range(self):
        region = NVDRAMRegion(2)
        with pytest.raises(IndexError):
            region.page_bytes(2)
