"""Cached dirty-bit popcounts stay equivalent to recomputation (S2).

``PageTable.dirty_count`` / ``shadow_dirty_count`` are maintained
incrementally by the three mutators; hypothesis drives arbitrary
interleavings of them and checks the caches against a fresh
``np.count_nonzero`` after every step.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mem.page_table import PageTable

NUM_PAGES = 24

_ops = st.lists(
    st.one_of(
        st.tuples(st.just("set_dirty"), st.integers(0, NUM_PAGES - 1)),
        st.tuples(st.just("clear_shadow"), st.integers(0, NUM_PAGES - 1)),
        st.tuples(st.just("scan"), st.just(0)),
    ),
    max_size=200,
)


def _assert_counts_match(table: PageTable) -> None:
    assert table.dirty_count == int(np.count_nonzero(table.dirty))
    assert table.shadow_dirty_count == int(
        np.count_nonzero(table.shadow_dirty)
    )


@settings(max_examples=200, deadline=None)
@given(_ops)
def test_cached_counts_equal_recomputed(ops):
    table = PageTable(NUM_PAGES)
    _assert_counts_match(table)
    for name, pfn in ops:
        if name == "set_dirty":
            table.set_dirty(pfn)
        elif name == "clear_shadow":
            table.clear_shadow(pfn)
        else:
            table.scan_and_clear_dirty()
        _assert_counts_match(table)


def test_counts_start_at_zero_and_track_duplicates():
    table = PageTable(8)
    assert table.dirty_count == 0
    table.set_dirty(3)
    table.set_dirty(3)  # idempotent: no double count
    assert table.dirty_count == 1
    assert table.shadow_dirty_count == 1
    table.set_dirty(5)
    assert table.dirty_count == 2
    table.scan_and_clear_dirty()
    assert table.dirty_count == 0
    assert table.shadow_dirty_count == 2  # shadow survives the scan
    table.clear_shadow(3)
    table.clear_shadow(3)  # idempotent: no negative count
    assert table.shadow_dirty_count == 1
