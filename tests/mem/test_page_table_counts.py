"""Cached dirty-bit popcounts stay equivalent to recomputation (S2).

``dirty_count`` / ``shadow_dirty_count`` are maintained incrementally by
the three mutators; hypothesis drives arbitrary interleavings of them —
against both kernels — and checks the caches against a fresh
``np.count_nonzero`` after every step.  The deterministic tests pin the
boundary cases: an empty table (the budget-0 shape, where the cache must
stay exactly zero through scans) and a fully dirty table (every page's
bit set, the worst case for the SoA kernel's packed-flags bookkeeping).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mem.page_table import PageTable
from repro.mem.soa import SoAPageTable

NUM_PAGES = 24

KERNEL_PARAMS = [
    pytest.param(PageTable, id="object"),
    pytest.param(SoAPageTable, id="soa"),
]

_ops = st.lists(
    st.one_of(
        st.tuples(st.just("set_dirty"), st.integers(0, NUM_PAGES - 1)),
        st.tuples(st.just("clear_shadow"), st.integers(0, NUM_PAGES - 1)),
        st.tuples(st.just("scan"), st.just(0)),
    ),
    max_size=200,
)


def _assert_counts_match(table) -> None:
    assert table.dirty_count == int(np.count_nonzero(table.dirty))
    assert table.shadow_dirty_count == int(
        np.count_nonzero(table.shadow_dirty)
    )


@pytest.mark.parametrize("table_cls", KERNEL_PARAMS)
@settings(max_examples=200, deadline=None)
@given(ops=_ops)
def test_cached_counts_equal_recomputed(table_cls, ops):
    table = table_cls(NUM_PAGES)
    _assert_counts_match(table)
    for name, pfn in ops:
        if name == "set_dirty":
            table.set_dirty(pfn)
        elif name == "clear_shadow":
            table.clear_shadow(pfn)
        else:
            table.scan_and_clear_dirty()
        _assert_counts_match(table)


@pytest.mark.parametrize("table_cls", KERNEL_PARAMS)
def test_counts_start_at_zero_and_track_duplicates(table_cls):
    table = table_cls(8)
    assert table.dirty_count == 0
    table.set_dirty(3)
    table.set_dirty(3)  # idempotent: no double count
    assert table.dirty_count == 1
    assert table.shadow_dirty_count == 1
    table.set_dirty(5)
    assert table.dirty_count == 2
    table.scan_and_clear_dirty()
    assert table.dirty_count == 0
    assert table.shadow_dirty_count == 2  # shadow survives the scan
    table.clear_shadow(3)
    table.clear_shadow(3)  # idempotent: no negative count
    assert table.shadow_dirty_count == 1


@pytest.mark.parametrize("table_cls", KERNEL_PARAMS)
def test_counts_on_empty_table_survive_scans(table_cls):
    """The budget-0 shape: nothing ever dirtied, counts pinned at zero."""
    table = table_cls(8)
    for _ in range(3):
        updated = table.scan_and_clear_dirty()
        assert updated.size == 0
        assert table.dirty_count == 0
        assert table.shadow_dirty_count == 0
    _assert_counts_match(table)


@pytest.mark.parametrize("table_cls", KERNEL_PARAMS)
def test_counts_at_full_table_dirty(table_cls):
    """Every page dirty: counts saturate, scan drains them all at once."""
    table = table_cls(NUM_PAGES)
    for pfn in range(NUM_PAGES):
        table.set_dirty(pfn)
    assert table.dirty_count == NUM_PAGES
    assert table.shadow_dirty_count == NUM_PAGES
    _assert_counts_match(table)
    updated = table.scan_and_clear_dirty()
    assert updated.tolist() == list(range(NUM_PAGES))
    assert table.dirty_count == 0
    assert table.shadow_dirty_count == NUM_PAGES
    for pfn in range(NUM_PAGES):
        table.clear_shadow(pfn)
    assert table.shadow_dirty_count == 0
    _assert_counts_match(table)
