"""Unit tests for the simulated page table, run against both kernels."""

import numpy as np
import pytest

from tests.mem.conftest import PAGE_TABLE_CLASSES


class TestConstruction:
    def test_all_pages_start_protected(self, page_table_cls):
        table = page_table_cls(16)
        assert table.protected_count() == 16

    def test_no_dirty_bits_initially(self, page_table_cls):
        table = page_table_cls(16)
        assert not table.dirty.any()
        assert not table.shadow_dirty.any()

    def test_invalid_size_rejected(self, page_table_cls):
        with pytest.raises(ValueError):
            page_table_cls(0)
        with pytest.raises(ValueError):
            page_table_cls(-5)


class TestProtectionBits:
    def test_unprotect_and_protect(self, page_table_cls):
        table = page_table_cls(8)
        table.unprotect(3)
        assert not table.is_write_protected(3)
        table.protect(3)
        assert table.is_write_protected(3)

    def test_protect_all(self, page_table_cls):
        table = page_table_cls(8)
        for pfn in range(8):
            table.unprotect(pfn)
        table.protect_all()
        assert table.protected_count() == 8

    def test_out_of_range_rejected(self, page_table_cls):
        table = page_table_cls(8)
        with pytest.raises(IndexError):
            table.protect(8)
        with pytest.raises(IndexError):
            table.unprotect(-1)
        with pytest.raises(IndexError):
            table.is_write_protected(100)


class TestDirtyBits:
    def test_set_dirty_sets_shadow_too(self, page_table_cls):
        table = page_table_cls(8)
        table.set_dirty(2)
        assert table.is_dirty(2)
        assert table.is_shadow_dirty(2)
        assert table.shadow_dirty[2]

    def test_scan_returns_and_clears(self, page_table_cls):
        table = page_table_cls(8)
        table.set_dirty(1)
        table.set_dirty(5)
        updated = table.scan_and_clear_dirty()
        assert sorted(updated.tolist()) == [1, 5]
        assert not table.dirty.any()

    def test_scan_preserves_shadow(self, page_table_cls):
        table = page_table_cls(8)
        table.set_dirty(1)
        table.scan_and_clear_dirty()
        assert table.shadow_dirty[1]

    def test_scan_counts_walks(self, page_table_cls):
        table = page_table_cls(8)
        table.scan_and_clear_dirty()
        table.scan_and_clear_dirty()
        assert table.walks == 2

    def test_empty_scan(self, page_table_cls):
        table = page_table_cls(8)
        updated = table.scan_and_clear_dirty()
        assert len(updated) == 0
        assert updated.dtype == np.int64 or updated.dtype == np.intp

    def test_clear_shadow(self, page_table_cls):
        table = page_table_cls(8)
        table.set_dirty(4)
        table.clear_shadow(4)
        assert not table.shadow_dirty[4]
        assert not table.is_shadow_dirty(4)

    def test_dirty_out_of_range(self, page_table_cls):
        table = page_table_cls(8)
        with pytest.raises(IndexError):
            table.set_dirty(9)

    def test_out_of_range_message_identical_across_kernels(self):
        """The façade contract covers exception text, not just types."""
        messages = set()
        for cls in PAGE_TABLE_CLASSES.values():
            with pytest.raises(IndexError) as exc:
                cls(8).set_dirty(9)
            messages.add(str(exc.value))
        assert len(messages) == 1
