"""Unit tests for the MMU: faults, dirty-bit side effects, scan costs."""

import pytest

from repro.mem.machine import MachineModel
from repro.mem.mmu import MMU, HardwareAssistedMMU
from repro.mem.page_table import PageTable
from repro.mem.tlb import TLB


def build_mmu(num_pages=32, hardware=False, machine=None):
    machine = machine if machine is not None else MachineModel()
    table = PageTable(num_pages)
    tlb = TLB(num_pages, machine.tlb_entries)
    cls = HardwareAssistedMMU if hardware else MMU
    return cls(table, tlb, machine)


class TestReadAccess:
    def test_read_never_faults_even_when_protected(self):
        mmu = build_mmu()
        assert mmu.page_table.is_write_protected(0)
        outcome = mmu.read_access(0)
        assert outcome.faulted is False

    def test_read_charges_dram_plus_miss(self):
        mmu = build_mmu()
        outcome = mmu.read_access(0)
        expected = mmu.machine.dram_access_cost_ns + mmu.machine.tlb_miss_cost_ns
        assert outcome.cost_ns == expected

    def test_second_read_is_cheaper(self):
        mmu = build_mmu()
        first = mmu.read_access(0)
        second = mmu.read_access(0)
        assert second.cost_ns < first.cost_ns
        assert second.cost_ns == mmu.machine.dram_access_cost_ns


class TestWriteAccess:
    def test_write_to_protected_page_faults(self):
        mmu = build_mmu()
        outcome = mmu.write_access(0)
        assert outcome.faulted is True
        assert mmu.faults == 1

    def test_faulted_write_does_not_set_dirty(self):
        mmu = build_mmu()
        mmu.write_access(0)
        assert not mmu.page_table.is_dirty(0)

    def test_write_after_unprotect_succeeds_and_dirties(self):
        mmu = build_mmu()
        mmu.unprotect_page(0)
        outcome = mmu.write_access(0)
        assert outcome.faulted is False
        assert outcome.newly_dirtied is True
        assert mmu.page_table.is_dirty(0)

    def test_repeat_write_does_not_redirty(self):
        """The TLB caches the dirty flag; later writes skip the PTE."""
        mmu = build_mmu()
        mmu.unprotect_page(0)
        mmu.write_access(0)
        outcome = mmu.write_access(0)
        assert outcome.newly_dirtied is False

    def test_write_after_scan_redirties_only_with_flush(self):
        """The stale-dirty-bit mechanism of section 6.3."""
        mmu = build_mmu()
        mmu.unprotect_page(0)
        mmu.write_access(0)

        # Scan WITHOUT a TLB flush: translation keeps its cached dirty
        # flag, so the next write leaves the PTE clean (stale view).
        mmu.epoch_scan(flush_tlb=False)
        mmu.write_access(0)
        assert not mmu.page_table.is_dirty(0)

        # Scan WITH a flush: the write re-marks the PTE.
        mmu.epoch_scan(flush_tlb=True)
        mmu.write_access(0)
        assert mmu.page_table.is_dirty(0)


class TestProtectionOps:
    def test_protect_page_invalidates_tlb(self):
        mmu = build_mmu()
        mmu.unprotect_page(3)
        mmu.write_access(3)
        assert 3 in mmu.tlb
        mmu.protect_page(3)
        assert 3 not in mmu.tlb

    def test_protect_cost(self):
        mmu = build_mmu()
        assert mmu.protect_page(0) == mmu.machine.pte_update_cost_ns
        assert mmu.unprotect_page(0) == mmu.machine.pte_update_cost_ns


class TestEpochScan:
    def test_scan_reports_updated_pages(self):
        mmu = build_mmu()
        for pfn in (1, 4, 9):
            mmu.unprotect_page(pfn)
            mmu.write_access(pfn)
        updated, _cost = mmu.epoch_scan()
        assert sorted(updated.tolist()) == [1, 4, 9]

    def test_scan_cost_includes_flush(self):
        mmu = build_mmu()
        _updated, with_flush = mmu.epoch_scan(flush_tlb=True)
        _updated, without = mmu.epoch_scan(flush_tlb=False)
        assert with_flush > without

    def test_mismatched_sizes_rejected(self):
        machine = MachineModel()
        with pytest.raises(ValueError):
            MMU(PageTable(8), TLB(16, machine.tlb_entries), machine)


class TestHardwareAssistedMMU:
    def test_no_fault_on_unprotected_first_write(self):
        mmu = build_mmu(hardware=True)
        mmu.page_table.write_protected[:] = False
        outcome = mmu.write_access(0)
        assert outcome.faulted is False
        assert mmu.dirty_counter == 1

    def test_counter_counts_unique_pages_only(self):
        mmu = build_mmu(hardware=True)
        mmu.page_table.write_protected[:] = False
        mmu.write_access(0)
        mmu.write_access(0)
        mmu.write_access(1)
        assert mmu.dirty_counter == 2

    def test_on_new_dirty_fires_before_commit(self):
        mmu = build_mmu(hardware=True)
        mmu.page_table.write_protected[:] = False
        observed = []
        mmu.on_new_dirty = lambda pfn: observed.append(
            (pfn, bool(mmu.page_table.shadow_dirty[pfn]), mmu.dirty_counter)
        )
        mmu.write_access(7)
        # At hook time the shadow bit was still clear and counter not bumped.
        assert observed == [(7, False, 0)]

    def test_threshold_interrupt(self):
        mmu = build_mmu(hardware=True)
        mmu.page_table.write_protected[:] = False
        raised = []
        mmu.set_threshold(2, lambda pfn: raised.append(pfn))
        mmu.write_access(0)
        assert raised == []
        mmu.write_access(1)
        assert raised == [1]
        assert mmu.interrupts_raised == 1

    def test_page_cleaned_decrements(self):
        mmu = build_mmu(hardware=True)
        mmu.page_table.write_protected[:] = False
        mmu.write_access(0)
        mmu.page_cleaned(0)
        assert mmu.dirty_counter == 0
        assert not mmu.page_table.shadow_dirty[0]

    def test_page_cleaned_idempotent(self):
        mmu = build_mmu(hardware=True)
        mmu.page_table.write_protected[:] = False
        mmu.write_access(0)
        mmu.page_cleaned(0)
        mmu.page_cleaned(0)
        assert mmu.dirty_counter == 0

    def test_still_faults_on_protected_page(self):
        """The flusher protects pages mid-IO even in hardware mode."""
        mmu = build_mmu(hardware=True)
        mmu.page_table.write_protected[:] = False
        mmu.protect_page(5)
        outcome = mmu.write_access(5)
        assert outcome.faulted is True

    def test_negative_threshold_rejected(self):
        mmu = build_mmu(hardware=True)
        with pytest.raises(ValueError):
            mmu.set_threshold(-1, lambda pfn: None)
