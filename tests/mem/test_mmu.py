"""Unit tests for the MMU: faults, dirty-bit side effects, scan costs.

The MMU is kernel-agnostic logic over the page-table/TLB contract, so
the whole module runs against both kernels via the ``kernel`` fixture.
"""

import pytest

from repro.mem.kernel import make_mmu, make_page_table, make_tlb
from repro.mem.machine import MachineModel
from repro.mem.mmu import MMU


@pytest.fixture
def build_mmu(kernel):
    def build(num_pages=32, hardware=False, machine=None):
        machine = machine if machine is not None else MachineModel()
        table = make_page_table(num_pages, kernel)
        tlb = make_tlb(num_pages, machine.tlb_entries, kernel)
        return make_mmu(table, tlb, machine, hardware=hardware)

    return build


class TestReadAccess:
    def test_read_never_faults_even_when_protected(self, build_mmu):
        mmu = build_mmu()
        assert mmu.page_table.is_write_protected(0)
        outcome = mmu.read_access(0)
        assert outcome.faulted is False

    def test_read_charges_dram_plus_miss(self, build_mmu):
        mmu = build_mmu()
        outcome = mmu.read_access(0)
        expected = mmu.machine.dram_access_cost_ns + mmu.machine.tlb_miss_cost_ns
        assert outcome.cost_ns == expected

    def test_second_read_is_cheaper(self, build_mmu):
        mmu = build_mmu()
        first = mmu.read_access(0)
        second = mmu.read_access(0)
        assert second.cost_ns < first.cost_ns
        assert second.cost_ns == mmu.machine.dram_access_cost_ns


class TestWriteAccess:
    def test_write_to_protected_page_faults(self, build_mmu):
        mmu = build_mmu()
        outcome = mmu.write_access(0)
        assert outcome.faulted is True
        assert mmu.faults == 1

    def test_faulted_write_does_not_set_dirty(self, build_mmu):
        mmu = build_mmu()
        mmu.write_access(0)
        assert not mmu.page_table.is_dirty(0)

    def test_write_after_unprotect_succeeds_and_dirties(self, build_mmu):
        mmu = build_mmu()
        mmu.unprotect_page(0)
        outcome = mmu.write_access(0)
        assert outcome.faulted is False
        assert outcome.newly_dirtied is True
        assert mmu.page_table.is_dirty(0)

    def test_repeat_write_does_not_redirty(self, build_mmu):
        """The TLB caches the dirty flag; later writes skip the PTE."""
        mmu = build_mmu()
        mmu.unprotect_page(0)
        mmu.write_access(0)
        outcome = mmu.write_access(0)
        assert outcome.newly_dirtied is False

    def test_write_after_scan_redirties_only_with_flush(self, build_mmu):
        """The stale-dirty-bit mechanism of section 6.3."""
        mmu = build_mmu()
        mmu.unprotect_page(0)
        mmu.write_access(0)

        # Scan WITHOUT a TLB flush: translation keeps its cached dirty
        # flag, so the next write leaves the PTE clean (stale view).
        mmu.epoch_scan(flush_tlb=False)
        mmu.write_access(0)
        assert not mmu.page_table.is_dirty(0)

        # Scan WITH a flush: the write re-marks the PTE.
        mmu.epoch_scan(flush_tlb=True)
        mmu.write_access(0)
        assert mmu.page_table.is_dirty(0)


class TestWriteProbe:
    """The allocation-free hot-path probe, and its negative fault encoding."""

    def test_probe_matches_access_on_success(self, build_mmu):
        mmu = build_mmu()
        mmu.unprotect_page(0)
        probed = mmu.write_probe(0)
        assert probed >= 0
        fresh = build_mmu()
        fresh.unprotect_page(0)
        assert probed == fresh.write_access(0).cost_ns

    def test_probe_encodes_fault_as_negative(self, build_mmu):
        mmu = build_mmu()
        probed = mmu.write_probe(0)
        assert probed < 0
        # The encoding round-trips: cost = -(probed + 1).
        fresh = build_mmu()
        assert -(probed + 1) == fresh.write_access(0).cost_ns
        assert mmu.faults == 1

    def test_repeated_probes_on_faulted_page_keep_faulting(self, build_mmu):
        """An already-faulted page is not sticky state: every probe on a
        still-protected page re-faults with the same negative encoding."""
        mmu = build_mmu()
        first = mmu.write_probe(0)
        second = mmu.write_probe(0)
        third = mmu.write_probe(0)
        assert first < 0
        # Retries hit a now-resident translation: same fault, cheaper walk.
        expected_retry = -(mmu.machine.dram_access_cost_ns) - 1
        assert second == third == expected_retry
        assert mmu.faults == 3
        assert not mmu.page_table.is_dirty(0)

    def test_probe_after_fault_resolution_succeeds(self, build_mmu):
        mmu = build_mmu()
        assert mmu.write_probe(5) < 0
        mmu.unprotect_page(5)
        assert mmu.write_probe(5) >= 0
        assert mmu.page_table.is_dirty(5)

    def test_hardware_probe_negative_encoding_on_faulted_page(self, build_mmu):
        """Hardware mode still faults on flusher-protected pages; the
        probe must not touch the dirty counter on that path."""
        mmu = build_mmu(hardware=True)
        mmu.unprotect_all()
        mmu.protect_page(5)
        first = mmu.write_probe(5)
        second = mmu.write_probe(5)
        assert first < 0 and second < 0
        assert mmu.faults == 2
        assert mmu.dirty_counter == 0


class TestProtectionOps:
    def test_protect_page_invalidates_tlb(self, build_mmu):
        mmu = build_mmu()
        mmu.unprotect_page(3)
        mmu.write_access(3)
        assert 3 in mmu.tlb
        mmu.protect_page(3)
        assert 3 not in mmu.tlb

    def test_protect_cost(self, build_mmu):
        mmu = build_mmu()
        assert mmu.protect_page(0) == mmu.machine.pte_update_cost_ns
        assert mmu.unprotect_page(0) == mmu.machine.pte_update_cost_ns


class TestEpochScan:
    def test_scan_reports_updated_pages(self, build_mmu):
        mmu = build_mmu()
        for pfn in (1, 4, 9):
            mmu.unprotect_page(pfn)
            mmu.write_access(pfn)
        updated, _cost = mmu.epoch_scan()
        assert sorted(updated.tolist()) == [1, 4, 9]

    def test_scan_cost_includes_flush(self, build_mmu):
        mmu = build_mmu()
        _updated, with_flush = mmu.epoch_scan(flush_tlb=True)
        _updated, without = mmu.epoch_scan(flush_tlb=False)
        assert with_flush > without

    def test_mismatched_sizes_rejected(self, kernel):
        machine = MachineModel()
        with pytest.raises(ValueError):
            MMU(
                make_page_table(8, kernel),
                make_tlb(16, machine.tlb_entries, kernel),
                machine,
            )


class TestHardwareAssistedMMU:
    def test_no_fault_on_unprotected_first_write(self, build_mmu):
        mmu = build_mmu(hardware=True)
        mmu.unprotect_all()
        outcome = mmu.write_access(0)
        assert outcome.faulted is False
        assert mmu.dirty_counter == 1

    def test_counter_counts_unique_pages_only(self, build_mmu):
        mmu = build_mmu(hardware=True)
        mmu.unprotect_all()
        mmu.write_access(0)
        mmu.write_access(0)
        mmu.write_access(1)
        assert mmu.dirty_counter == 2

    def test_on_new_dirty_fires_before_commit(self, build_mmu):
        mmu = build_mmu(hardware=True)
        mmu.unprotect_all()
        observed = []
        mmu.on_new_dirty = lambda pfn: observed.append(
            (pfn, mmu.page_table.is_shadow_dirty(pfn), mmu.dirty_counter)
        )
        mmu.write_access(7)
        # At hook time the shadow bit was still clear and counter not bumped.
        assert observed == [(7, False, 0)]

    def test_threshold_interrupt(self, build_mmu):
        mmu = build_mmu(hardware=True)
        mmu.unprotect_all()
        raised = []
        mmu.set_threshold(2, lambda pfn: raised.append(pfn))
        mmu.write_access(0)
        assert raised == []
        mmu.write_access(1)
        assert raised == [1]
        assert mmu.interrupts_raised == 1

    def test_page_cleaned_decrements(self, build_mmu):
        mmu = build_mmu(hardware=True)
        mmu.unprotect_all()
        mmu.write_access(0)
        mmu.page_cleaned(0)
        assert mmu.dirty_counter == 0
        assert not mmu.page_table.is_shadow_dirty(0)

    def test_page_cleaned_idempotent(self, build_mmu):
        mmu = build_mmu(hardware=True)
        mmu.unprotect_all()
        mmu.write_access(0)
        mmu.page_cleaned(0)
        mmu.page_cleaned(0)
        assert mmu.dirty_counter == 0

    def test_still_faults_on_protected_page(self, build_mmu):
        """The flusher protects pages mid-IO even in hardware mode."""
        mmu = build_mmu(hardware=True)
        mmu.unprotect_all()
        mmu.protect_page(5)
        outcome = mmu.write_access(5)
        assert outcome.faulted is True

    def test_negative_threshold_rejected(self, build_mmu):
        mmu = build_mmu(hardware=True)
        with pytest.raises(ValueError):
            mmu.set_threshold(-1, lambda pfn: None)
