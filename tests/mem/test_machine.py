"""Unit tests for the machine cost model."""

import dataclasses

import pytest

from repro.mem.machine import MachineModel


class TestValidation:
    def test_defaults_valid(self):
        MachineModel()

    def test_bad_page_size(self):
        with pytest.raises(ValueError):
            MachineModel(page_size=1000)
        with pytest.raises(ValueError):
            MachineModel(page_size=0)

    def test_bad_tlb_entries(self):
        with pytest.raises(ValueError):
            MachineModel(tlb_entries=0)

    def test_negative_costs(self):
        with pytest.raises(ValueError):
            MachineModel(trap_cost_ns=-1)
        with pytest.raises(ValueError):
            MachineModel(scan_per_page_ns=-0.1)

    def test_frozen(self):
        machine = MachineModel()
        with pytest.raises(dataclasses.FrozenInstanceError):
            machine.trap_cost_ns = 0


class TestScaledCosts:
    def test_tlb_flush_scales_with_pages(self):
        machine = MachineModel()
        small = machine.tlb_flush_cost(1_000)
        large = machine.tlb_flush_cost(1_000_000)
        assert large > small

    def test_tlb_flush_matches_paper_at_4m_pages(self):
        """~3.5 ms for a 16 GB region (footnote 4 of the paper)."""
        machine = MachineModel()
        pages_16gb = 16 * 1024**3 // 4096
        cost_ms = machine.tlb_flush_cost(pages_16gb) / 1e6
        assert 2.0 < cost_ms < 5.0

    def test_scan_matches_paper_at_4m_pages(self):
        """~3 ms to set/clear bits over a 16 GB region."""
        machine = MachineModel()
        pages_16gb = 16 * 1024**3 // 4096
        cost_ms = machine.scan_cost(pages_16gb) / 1e6
        assert 2.0 < cost_ms < 4.0

    def test_zero_pages(self):
        machine = MachineModel()
        assert machine.scan_cost(0) == 0
        assert machine.tlb_flush_cost(0) == machine.tlb_shootdown_cost_ns

    def test_replace_builds_variant(self):
        machine = MachineModel()
        free_traps = dataclasses.replace(machine, trap_cost_ns=0)
        assert free_traps.trap_cost_ns == 0
        assert free_traps.page_size == machine.page_size
