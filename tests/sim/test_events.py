"""Unit tests for the event queue and simulation spine."""

import pytest

from repro.sim.events import EventQueue, Simulation


class TestEventQueue:
    def test_empty(self):
        queue = EventQueue()
        assert len(queue) == 0
        assert queue.peek_time() is None
        assert queue.pop_due(10**12) is None

    def test_schedule_and_pop(self):
        queue = EventQueue()
        fired = []
        queue.schedule(100, lambda: fired.append("a"))
        event = queue.pop_due(100)
        event.action()
        assert fired == ["a"]

    def test_not_due_yet(self):
        queue = EventQueue()
        queue.schedule(100, lambda: None)
        assert queue.pop_due(99) is None
        assert queue.pop_due(100) is not None

    def test_negative_time_rejected(self):
        queue = EventQueue()
        with pytest.raises(ValueError):
            queue.schedule(-1, lambda: None)

    def test_timestamp_order(self):
        queue = EventQueue()
        fired = []
        queue.schedule(300, lambda: fired.append(3))
        queue.schedule(100, lambda: fired.append(1))
        queue.schedule(200, lambda: fired.append(2))
        while (event := queue.pop_due(1000)) is not None:
            event.action()
        assert fired == [1, 2, 3]

    def test_fifo_for_simultaneous_events(self):
        queue = EventQueue()
        fired = []
        for tag in "abc":
            queue.schedule(50, lambda tag=tag: fired.append(tag))
        while (event := queue.pop_due(50)) is not None:
            event.action()
        assert fired == ["a", "b", "c"]

    def test_cancel(self):
        queue = EventQueue()
        fired = []
        keep = queue.schedule(10, lambda: fired.append("keep"))
        drop = queue.schedule(5, lambda: fired.append("drop"))
        queue.cancel(drop)
        assert queue.peek_time() == 10
        queue.pop_due(100).action()
        assert fired == ["keep"]
        assert keep.when_ns == 10

    def test_peek_skips_cancelled(self):
        queue = EventQueue()
        first = queue.schedule(1, lambda: None)
        queue.schedule(2, lambda: None)
        queue.cancel(first)
        assert queue.peek_time() == 2


class TestSimulation:
    def test_schedule_after_is_relative(self):
        sim = Simulation()
        sim.clock.advance(100)
        event = sim.schedule_after(50, lambda: None)
        assert event.when_ns == 150

    def test_drain_due_fires_everything_due(self):
        sim = Simulation()
        fired = []
        sim.schedule_at(10, lambda: fired.append(1))
        sim.schedule_at(20, lambda: fired.append(2))
        sim.schedule_at(30, lambda: fired.append(3))
        sim.clock.advance(20)
        assert sim.drain_due() == 2
        assert fired == [1, 2]

    def test_drain_due_fires_chained_events(self):
        sim = Simulation()
        fired = []

        def first():
            fired.append("first")
            sim.schedule_at(sim.now, lambda: fired.append("chained"))

        sim.schedule_at(5, first)
        sim.clock.advance(5)
        assert sim.drain_due() == 2
        assert fired == ["first", "chained"]

    def test_run_until_steps_clock_through_events(self):
        sim = Simulation()
        observed = []
        sim.schedule_at(10, lambda: observed.append(sim.now))
        sim.schedule_at(20, lambda: observed.append(sim.now))
        sim.run_until(100)
        assert observed == [10, 20]
        assert sim.now == 100

    def test_run_until_ignores_future_events(self):
        sim = Simulation()
        fired = []
        sim.schedule_at(500, lambda: fired.append(1))
        sim.run_until(100)
        assert fired == []
        assert sim.now == 100

    def test_run_until_event_scheduling_events(self):
        sim = Simulation()
        fired = []

        def recur():
            fired.append(sim.now)
            if sim.now < 50:
                sim.schedule_after(10, recur)

        sim.schedule_at(10, recur)
        sim.run_until(100)
        assert fired == [10, 20, 30, 40, 50]

    def test_run_until_past_is_safe(self):
        sim = Simulation()
        sim.clock.advance(100)
        sim.run_until(50)
        assert sim.now == 100
