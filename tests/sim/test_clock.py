"""Unit tests for the virtual clock."""

import pytest

from repro.sim.clock import NS_PER_MS, NS_PER_SEC, NS_PER_US, SimClock, ms, seconds, us


class TestConversions:
    def test_us(self):
        assert us(1) == 1_000
        assert us(2.5) == 2_500

    def test_ms(self):
        assert ms(1) == NS_PER_MS
        assert ms(0.001) == 1_000

    def test_seconds(self):
        assert seconds(1) == NS_PER_SEC
        assert seconds(0.5) == 500 * NS_PER_MS

    def test_rounding(self):
        assert us(0.0004) == 0
        assert us(0.0006) == 1

    def test_constants_consistent(self):
        assert NS_PER_MS == 1000 * NS_PER_US
        assert NS_PER_SEC == 1000 * NS_PER_MS


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now == 0

    def test_custom_start(self):
        assert SimClock(500).now == 500

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            SimClock(-1)

    def test_advance(self):
        clock = SimClock()
        assert clock.advance(100) == 100
        assert clock.advance(50) == 150
        assert clock.now == 150

    def test_advance_zero_is_noop(self):
        clock = SimClock(10)
        clock.advance(0)
        assert clock.now == 10

    def test_advance_negative_rejected(self):
        clock = SimClock()
        with pytest.raises(ValueError):
            clock.advance(-1)

    def test_advance_to_future(self):
        clock = SimClock()
        clock.advance_to(1_000)
        assert clock.now == 1_000

    def test_advance_to_past_is_noop(self):
        clock = SimClock(1_000)
        clock.advance_to(500)
        assert clock.now == 1_000

    def test_now_seconds(self):
        clock = SimClock()
        clock.advance(NS_PER_SEC // 2)
        assert clock.now_seconds == pytest.approx(0.5)

    def test_repr_mentions_time(self):
        clock = SimClock(42)
        assert "42" in repr(clock)

    def test_monotonicity_over_many_advances(self):
        clock = SimClock()
        last = 0
        for delta in range(100):
            clock.advance(delta)
            assert clock.now >= last
            last = clock.now
