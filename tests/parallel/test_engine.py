"""Sweep engine: cross-worker determinism, retries, fault recovery.

The load-bearing claims: the merged report's deterministic view is
byte-identical for any ``--jobs`` count; a worker SIGKILLed mid-job is
retried on a rebuilt pool and the sweep still completes with the same
bytes; retry exhaustion surfaces as :class:`SweepError` carrying the
partial results.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.parallel import (
    SweepError,
    SweepGrid,
    deterministic_view,
    dumps,
    run_sweep,
)
from repro.parallel.report import build_sweep_report, checksum
from repro.parallel.worker import run_sweep_job

GRID = SweepGrid(
    workloads=("YCSB-A",),
    budget_fractions=(None, 0.175),
    record_count=300,
    operation_count=800,
)


@pytest.fixture(scope="module")
def serial_report():
    return run_sweep(GRID, jobs=1)


def test_two_workers_match_serial_byte_for_byte(serial_report):
    parallel_report = run_sweep(GRID, jobs=2)
    assert dumps(parallel_report, strip_wall=True) == dumps(
        serial_report, strip_wall=True
    )
    assert (
        parallel_report["checksum_sha256"]
        == serial_report["checksum_sha256"]
    )


def test_compiled_streams_match_generator_byte_for_byte(
    serial_report, monkeypatch
):
    """Bypassing op-stream materialization changes nothing but wall time.

    ``run_sweep`` normally compiles each distinct op stream once and
    hands workers a ``.ops`` path; with materialization stubbed out the
    workers fall back to per-job generation, and the report bytes must
    not move.
    """
    from repro.parallel import engine

    monkeypatch.setattr(
        engine, "materialize_ops_paths", lambda jobs, directory: jobs
    )
    generator_report = run_sweep(GRID, jobs=1)
    assert dumps(generator_report, strip_wall=True) == dumps(
        serial_report, strip_wall=True
    )


def test_checksum_covers_the_deterministic_view(serial_report):
    assert checksum(serial_report) == serial_report["checksum_sha256"]
    tampered = json_round_trip(serial_report)
    tampered["jobs"][0]["result"]["ops_executed"] += 1
    assert checksum(tampered) != serial_report["checksum_sha256"]
    # The wall section is explicitly outside the checksum.
    assert "wall" not in deterministic_view(serial_report)


def json_round_trip(report):
    import json

    return json.loads(json.dumps(report))


def test_killed_worker_is_retried_and_bytes_match(serial_report, tmp_path):
    marker = tmp_path / "kill-once"
    doctored = dataclasses.replace(
        GRID.jobs()[1], fault_kill_once_path=str(marker)
    )
    messages = []
    report = run_sweep(
        GRID, jobs=2, _job_overrides={1: doctored}, progress=messages.append
    )
    assert marker.exists()  # the worker really died mid-job
    assert any("worker process died" in m for m in messages)
    assert report["wall"]["retries"] >= 1
    assert dumps(report, strip_wall=True) == dumps(
        serial_report, strip_wall=True
    )


def test_persistently_crashing_job_raises_with_partial_results(tmp_path):
    # A marker path whose parent directory does not exist makes the
    # fault hook fail on *every* attempt, exhausting the retry budget.
    doctored = dataclasses.replace(
        GRID.jobs()[1],
        fault_kill_once_path=str(tmp_path / "missing" / "marker"),
    )
    with pytest.raises(SweepError) as excinfo:
        run_sweep(GRID, jobs=2, max_retries=1, _job_overrides={1: doctored})
    assert 1 in excinfo.value.failures
    assert 0 in excinfo.value.partial  # the healthy job still completed


def test_serial_retry_then_success(monkeypatch):
    from repro.parallel import worker as worker_mod

    real = worker_mod.run_workload
    calls = {"n": 0}

    def flaky(*args, **kwargs):
        calls["n"] += 1
        if calls["n"] == 1:
            raise RuntimeError("induced first-attempt failure")
        return real(*args, **kwargs)

    monkeypatch.setattr(worker_mod, "run_workload", flaky)
    report = run_sweep(GRID, jobs=1, max_retries=1)
    assert report["wall"]["retries"] == 1
    assert len(report["jobs"]) == len(GRID.jobs())


def test_serial_retry_exhaustion_raises(monkeypatch):
    from repro.parallel import worker as worker_mod

    def always_broken(*args, **kwargs):
        raise RuntimeError("induced permanent failure")

    monkeypatch.setattr(worker_mod, "run_workload", always_broken)
    with pytest.raises(SweepError) as excinfo:
        run_sweep(GRID, jobs=1, max_retries=1)
    assert not excinfo.value.partial
    assert set(excinfo.value.failures) == {0, 1}


def test_job_payload_is_pure(serial_report):
    payload = run_sweep_job(GRID.jobs()[0])
    again = run_sweep_job(GRID.jobs()[0])
    payload.pop("wall_s")
    again.pop("wall_s")
    assert payload == again
    assert payload["result"] == serial_report["jobs"][0]["result"]


def test_report_refuses_missing_jobs(serial_report):
    results = {0: {"job": {}, "result": {}, "wall_s": 0.0}}
    with pytest.raises(ValueError, match="missing job indices"):
        build_sweep_report(GRID, results, workers=1, total_wall_s=0.0)


def test_argument_validation():
    with pytest.raises(ValueError, match="jobs"):
        run_sweep(GRID, jobs=0)
    with pytest.raises(ValueError, match="max_retries"):
        run_sweep(GRID, jobs=1, max_retries=-1)
