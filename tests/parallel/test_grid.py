"""SweepGrid: deterministic expansion, validation, JSON round-trip."""

from __future__ import annotations

import json

import pytest

from repro.parallel.grid import SweepGrid


def test_job_expansion_is_deterministic_and_indexed():
    grid = SweepGrid(
        workloads=("YCSB-A", "YCSB-B"),
        budget_fractions=(None, 0.175),
        thetas=(0.8, 0.99),
        seeds=(1, 2),
        record_count=100,
        operation_count=200,
    )
    jobs = grid.jobs()
    assert len(jobs) == 2 * 2 * 2 * 2
    assert [job.index for job in jobs] == list(range(len(jobs)))
    assert jobs == grid.jobs()  # pure function of the grid
    # Nesting order: workload is the slowest axis, seed the fastest.
    assert jobs[0].workload == "YCSB-A" and jobs[-1].workload == "YCSB-B"
    assert (jobs[0].seed, jobs[1].seed) == (1, 2)


def test_timeout_is_stamped_onto_jobs():
    grid = SweepGrid()
    assert grid.jobs()[0].timeout_s is None
    assert grid.jobs(timeout_s=1.5)[0].timeout_s == 1.5


def test_ops_path_is_an_execution_detail_not_identity():
    """``ops_path`` must never leak into payload dicts (byte stability)."""
    import dataclasses

    job = SweepGrid().jobs()[0]
    backed = dataclasses.replace(job, ops_path="/tmp/sweep-0.ops")
    assert "ops_path" not in backed.as_dict()
    assert backed.as_dict() == job.as_dict()


def test_json_round_trip(tmp_path):
    grid = SweepGrid(
        workloads=("YCSB-F",),
        budget_fractions=(0.11, None),
        thetas=(0.95,),
        seeds=(7,),
        record_count=300,
        operation_count=900,
    )
    path = tmp_path / "grid.json"
    path.write_text(json.dumps(grid.as_dict()))
    assert SweepGrid.from_file(str(path)) == grid


def test_grid_file_must_hold_object(tmp_path):
    path = tmp_path / "grid.json"
    path.write_text("[1, 2]")
    with pytest.raises(ValueError, match="JSON object"):
        SweepGrid.from_file(str(path))


def test_unknown_keys_rejected():
    with pytest.raises(ValueError, match="unknown grid keys"):
        SweepGrid.from_dict({"workloads": ["YCSB-A"], "budget_gb": [2]})


@pytest.mark.parametrize(
    "kwargs, match",
    [
        ({"workloads": ()}, "at least one workload"),
        ({"workloads": ("YCSB-Z",)}, "unknown workload"),
        ({"budget_fractions": ()}, "at least one budget"),
        ({"budget_fractions": (0.0,)}, "must be positive"),
        ({"budget_fractions": (0.2, 0.2)}, "duplicate budget"),
        ({"thetas": (1.5,)}, "theta"),
        ({"seeds": ()}, "at least one seed"),
        ({"record_count": 0}, "record_count"),
        ({"operation_count": 0}, "operation_count"),
    ],
)
def test_validation(kwargs, match):
    with pytest.raises(ValueError, match=match):
        SweepGrid(**kwargs)
