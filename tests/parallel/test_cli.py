"""``repro sweep`` and the perf CLI's robustness/baseline satellites."""

from __future__ import annotations

import json
import subprocess
import types

import pytest

from repro.cli import BENCH_BASELINE_PATH, main
from repro.perf import SCHEMA_VERSION

SWEEP_ARGS = [
    "sweep",
    "--budgets-gb", "2,18",
    "--records", "300",
    "--ops", "800",
]


class TestSweepCommand:
    def test_jobs_1_and_2_write_identical_deterministic_views(
        self, capsys, tmp_path
    ):
        one = tmp_path / "sweep1.json"
        two = tmp_path / "sweep2.json"
        assert main(SWEEP_ARGS + ["--jobs", "1", "--out", str(one)]) == 0
        assert main(SWEEP_ARGS + ["--jobs", "2", "--out", str(two)]) == 0
        out = capsys.readouterr().out
        assert "sweep checksum:" in out
        assert "overhead_pct" in out
        first, second = json.loads(one.read_text()), json.loads(two.read_text())
        first.pop("wall")
        second.pop("wall")
        assert first == second

    def test_strip_wall_writes_the_deterministic_view(self, tmp_path):
        out = tmp_path / "sweep.json"
        argv = SWEEP_ARGS + ["--out", str(out), "--strip-wall"]
        assert main(argv) == 0
        assert "wall" not in json.loads(out.read_text())

    def test_grid_file_overrides_flags(self, capsys, tmp_path):
        grid_path = tmp_path / "grid.json"
        grid_path.write_text(
            json.dumps(
                {
                    "workloads": ["YCSB-A"],
                    "budget_fractions": [None, 0.175],
                    "thetas": [0.99],
                    "seeds": [42],
                    "record_count": 300,
                    "operation_count": 800,
                }
            )
        )
        assert main(["sweep", "--grid", str(grid_path)]) == 0
        assert "Budget sweep (2 jobs" in capsys.readouterr().out

    def test_keyboard_interrupt_exits_130(self, monkeypatch, capsys):
        import repro.parallel

        def interrupted(*args, **kwargs):
            raise KeyboardInterrupt

        monkeypatch.setattr(repro.parallel, "run_sweep", interrupted)
        assert main(SWEEP_ARGS) == 130
        assert "interrupted" in capsys.readouterr().err

    def test_sweep_failure_reports_partial_results(
        self, monkeypatch, capsys
    ):
        import repro.parallel

        def doomed(grid, **kwargs):
            raise repro.parallel.SweepError(
                "2 of 4 jobs failed",
                partial={0: {}, 2: {}},
                failures={1: "boom", 3: "boom"},
            )

        monkeypatch.setattr(repro.parallel, "run_sweep", doomed)
        assert main(SWEEP_ARGS) == 1
        err = capsys.readouterr().err
        assert "sweep failed" in err
        assert "partial results: 2 of" in err


def _fake_report() -> dict:
    return {
        "schema_version": SCHEMA_VERSION,
        "mode": "quick",
        "kernel": "object",
        "micro": {},
        "macro": {},
        "wall": {"micro": {}, "macro": {}, "speedups": {}, "repeats": 1},
    }


@pytest.fixture()
def fake_suite(monkeypatch):
    import repro.perf

    monkeypatch.setattr(
        repro.perf, "run_suite", lambda quick, repeats: _fake_report()
    )


def _fake_git(stdout: str, returncode: int = 0):
    def runner(cmd, **kwargs):
        assert cmd[:2] == ["git", "status"]
        return types.SimpleNamespace(returncode=returncode, stdout=stdout)

    return runner


class TestPerfBaselineUpdate:
    def test_refuses_on_dirty_tree(
        self, fake_suite, monkeypatch, tmp_path, capsys
    ):
        monkeypatch.chdir(tmp_path)
        monkeypatch.setattr(subprocess, "run", _fake_git(" M src/x.py\n"))
        assert main(["perf", "--quick", "--update-baseline"]) == 1
        assert "refusing to update baseline" in capsys.readouterr().err
        assert not (tmp_path / BENCH_BASELINE_PATH).exists()

    def test_force_overrides_dirty_tree(
        self, fake_suite, monkeypatch, tmp_path, capsys
    ):
        monkeypatch.chdir(tmp_path)
        (tmp_path / "benchmarks").mkdir()
        monkeypatch.setattr(subprocess, "run", _fake_git(" M src/x.py\n"))
        assert main(["perf", "--quick", "--update-baseline", "--force"]) == 0
        assert "updated" in capsys.readouterr().out
        written = json.loads((tmp_path / BENCH_BASELINE_PATH).read_text())
        assert written["schema_version"] == SCHEMA_VERSION

    def test_clean_tree_updates_without_force(
        self, fake_suite, monkeypatch, tmp_path
    ):
        monkeypatch.chdir(tmp_path)
        (tmp_path / "benchmarks").mkdir()
        monkeypatch.setattr(subprocess, "run", _fake_git(""))
        assert main(["perf", "--quick", "--update-baseline"]) == 0
        assert (tmp_path / BENCH_BASELINE_PATH).exists()

    def test_unreadable_git_counts_as_dirty(
        self, fake_suite, monkeypatch, tmp_path
    ):
        monkeypatch.chdir(tmp_path)
        monkeypatch.setattr(subprocess, "run", _fake_git("", returncode=128))
        assert main(["perf", "--quick", "--update-baseline"]) == 1


class TestPerfInterrupt:
    def test_keyboard_interrupt_exits_130(self, monkeypatch, capsys):
        import repro.perf

        def interrupted(quick, repeats):
            raise KeyboardInterrupt

        monkeypatch.setattr(repro.perf, "run_suite", interrupted)
        assert main(["perf", "--quick"]) == 130
        assert "interrupted" in capsys.readouterr().err
