"""Unit tests for the SSD service model."""

import pytest

from repro.sim.clock import NS_PER_SEC
from repro.storage.ssd import SSD


class TestValidation:
    def test_bad_bandwidth(self):
        with pytest.raises(ValueError):
            SSD(write_bandwidth_bytes_per_s=0)

    def test_bad_queue_depth(self):
        with pytest.raises(ValueError):
            SSD(queue_depth=0)

    def test_bad_latency(self):
        with pytest.raises(ValueError):
            SSD(write_latency_ns=-1)

    def test_bad_io_size(self):
        ssd = SSD()
        with pytest.raises(ValueError):
            ssd.submit_write(0, 0)


class TestServiceModel:
    def test_single_write_completion(self):
        ssd = SSD(
            write_bandwidth_bytes_per_s=1e9, write_latency_ns=10_000, queue_depth=4
        )
        completion = ssd.submit_write(now_ns=0, size_bytes=4096)
        assert completion == 10_000 + 4096  # 4096 B at 1 GB/s = 4096 ns

    def test_idle_device_serves_immediately(self):
        ssd = SSD(write_latency_ns=1_000, write_bandwidth_bytes_per_s=1e9)
        completion = ssd.submit_write(now_ns=500_000, size_bytes=1024)
        assert completion == 500_000 + 1_000 + 1024

    def test_parallel_slots(self):
        ssd = SSD(write_latency_ns=1_000, write_bandwidth_bytes_per_s=1e9, queue_depth=2)
        first = ssd.submit_write(0, 1024)
        second = ssd.submit_write(0, 1024)
        assert first == second  # two free slots serve concurrently

    def test_queueing_delay_when_saturated(self):
        ssd = SSD(write_latency_ns=1_000, write_bandwidth_bytes_per_s=1e9, queue_depth=1)
        first = ssd.submit_write(0, 1024)
        second = ssd.submit_write(0, 1024)
        assert second == first + 1_000 + 1024

    def test_outstanding_counts_in_service(self):
        ssd = SSD(queue_depth=4)
        ssd.submit_write(0, 4096)
        ssd.submit_write(0, 4096)
        assert ssd.outstanding(0) == 2
        assert ssd.outstanding(10**12) == 0

    def test_earliest_free_slot(self):
        ssd = SSD(queue_depth=2, write_latency_ns=1_000, write_bandwidth_bytes_per_s=1e9)
        assert ssd.earliest_free_slot() == 0
        ssd.submit_write(0, 1024)
        assert ssd.earliest_free_slot() == 0  # second slot still free
        ssd.submit_write(0, 1024)
        assert ssd.earliest_free_slot() > 0


class TestRates:
    def test_default_device_matches_paper_iops(self):
        """Section 6.1: the SSD supports ~625 K-IOPS."""
        ssd = SSD()
        assert ssd.peak_write_iops(4096) == pytest.approx(625_000, rel=0.05)

    def test_reads_and_writes_tracked_separately(self):
        ssd = SSD()
        ssd.submit_write(0, 100)
        ssd.submit_read(0, 200)
        assert ssd.stats.bytes_written == 100
        assert ssd.stats.bytes_read == 200
        assert ssd.stats.writes == 1
        assert ssd.stats.reads == 1

    def test_write_rate(self):
        ssd = SSD()
        ssd.submit_write(0, 10_000)
        rate = ssd.stats.write_rate_bytes_per_s(NS_PER_SEC)
        assert rate == pytest.approx(10_000)

    def test_write_rate_zero_elapsed(self):
        ssd = SSD()
        assert ssd.stats.write_rate_bytes_per_s(0) == 0.0

    def test_drive_writes_wear(self):
        ssd = SSD(capacity_bytes=1_000_000)
        ssd.submit_write(0, 500_000)
        assert ssd.drive_writes() == pytest.approx(0.5)
