"""Unit tests for the backing store's version semantics."""

import pytest

from repro.storage.backing_store import BackingStore


class TestBasics:
    def test_empty_store(self):
        store = BackingStore(num_pages=4)
        assert store.read(0) is None
        assert store.version(0) == 0
        assert store.persisted_count() == 0

    def test_persist_and_read(self):
        store = BackingStore(4, page_size=16)
        store.persist(1, b"x" * 16, version=3)
        assert store.read(1) == b"x" * 16
        assert store.version(1) == 3

    def test_wrong_size_rejected(self):
        store = BackingStore(4, page_size=16)
        with pytest.raises(ValueError):
            store.persist(0, b"short", 1)

    def test_out_of_range(self):
        store = BackingStore(4)
        with pytest.raises(IndexError):
            store.read(4)
        with pytest.raises(IndexError):
            store.persist(-1, bytes(4096), 1)

    def test_negative_version(self):
        store = BackingStore(4, page_size=16)
        with pytest.raises(ValueError):
            store.persist(0, bytes(16), -1)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            BackingStore(0)


class TestVersionOrdering:
    def test_newer_version_wins(self):
        store = BackingStore(4, page_size=4)
        store.persist(0, b"old!", 1)
        store.persist(0, b"new!", 2)
        assert store.read(0) == b"new!"
        assert store.version(0) == 2

    def test_stale_flush_never_regresses(self):
        """A late-arriving stale IO must not clobber newer durable data."""
        store = BackingStore(4, page_size=4)
        store.persist(0, b"newv", 5)
        store.persist(0, b"oldv", 3)
        assert store.read(0) == b"newv"
        assert store.version(0) == 5

    def test_same_version_overwrites(self):
        store = BackingStore(4, page_size=4)
        store.persist(0, b"aaaa", 2)
        store.persist(0, b"bbbb", 2)
        assert store.read(0) == b"bbbb"


class TestHoldsVersion:
    def test_version_zero_always_durable(self):
        """A never-written page is trivially durable (all zeros)."""
        store = BackingStore(4)
        assert store.holds_version(0, 0) is True

    def test_missing_page_not_durable(self):
        store = BackingStore(4)
        assert store.holds_version(0, 1) is False

    def test_holds_at_least(self):
        store = BackingStore(4, page_size=4)
        store.persist(0, b"data", 5)
        assert store.holds_version(0, 5)
        assert store.holds_version(0, 4)
        assert not store.holds_version(0, 6)
