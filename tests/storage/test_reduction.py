"""Tests for the flush-traffic reduction stage (section 7)."""

import pytest

from repro.storage.reduction import (
    ContentDeduplicator,
    ReductionPipeline,
    ZlibCompressor,
)


class TestZlibCompressor:
    def test_compressible_payload_shrinks(self):
        compressor = ZlibCompressor()
        result = compressor.process(b"a" * 4096)
        assert result.physical_bytes < 200

    def test_incompressible_payload_stored_raw(self):
        import os

        compressor = ZlibCompressor()
        payload = bytes(os.urandom(4096))
        result = compressor.process(payload)
        assert result.physical_bytes <= len(payload)

    def test_cpu_cost_linear(self):
        compressor = ZlibCompressor(cpu_ns_per_byte=1.0)
        small = compressor.process(b"x" * 100)
        large = compressor.process(b"x" * 1000)
        assert large.cpu_cost_ns == 10 * small.cpu_cost_ns

    def test_stats_accumulate(self):
        compressor = ZlibCompressor()
        compressor.process(b"b" * 1000)
        compressor.process(b"c" * 1000)
        assert compressor.stats.payloads == 2
        assert compressor.stats.logical_bytes == 2000
        assert compressor.stats.ratio < 0.5

    def test_validation(self):
        with pytest.raises(ValueError):
            ZlibCompressor(level=0)
        with pytest.raises(ValueError):
            ZlibCompressor(cpu_ns_per_byte=-1)
        with pytest.raises(ValueError):
            ZlibCompressor().process(b"")


class TestDeduplicator:
    def test_first_copy_full_size(self):
        dedup = ContentDeduplicator()
        result = dedup.process(b"payload" * 100)
        assert result.physical_bytes == 700
        assert not result.deduplicated

    def test_repeat_becomes_metadata(self):
        dedup = ContentDeduplicator()
        dedup.process(b"payload" * 100)
        result = dedup.process(b"payload" * 100)
        assert result.deduplicated
        assert result.physical_bytes == ContentDeduplicator.METADATA_BYTES

    def test_distinct_payloads_not_deduped(self):
        dedup = ContentDeduplicator()
        dedup.process(b"one" * 100)
        result = dedup.process(b"two" * 100)
        assert not result.deduplicated
        assert dedup.unique_payloads == 2

    def test_hit_counting(self):
        dedup = ContentDeduplicator()
        for _ in range(3):
            dedup.process(b"same" * 50)
        assert dedup.stats.dedup_hits == 2


class TestPipeline:
    def test_dedup_short_circuits_compression(self):
        pipeline = ReductionPipeline()
        pipeline.process(b"dup" * 500)
        result = pipeline.process(b"dup" * 500)
        assert result.deduplicated
        assert result.physical_bytes == ContentDeduplicator.METADATA_BYTES

    def test_fresh_payloads_get_compressed(self):
        pipeline = ReductionPipeline()
        result = pipeline.process(b"fresh" * 500)
        assert not result.deduplicated
        assert result.physical_bytes < 2500

    def test_pipeline_ratio_beats_either_alone(self):
        # Workload: half repeats, half compressible-but-unique.
        payloads = []
        for i in range(20):
            payloads.append(b"repeat" * 400)
            payloads.append((b"unique%03d" % i) * 240)

        def total_ratio(reducer_factory):
            reducer = reducer_factory()
            for payload in payloads:
                reducer.process(payload)
            return reducer.stats.ratio

        pipeline = total_ratio(ReductionPipeline)
        dedup_only = total_ratio(ContentDeduplicator)
        assert pipeline < dedup_only


class TestFlusherIntegration:
    def test_reducer_shrinks_ssd_traffic(self):
        from repro.core.config import ViyojitConfig
        from repro.core.runtime import Viyojit
        from repro.sim.events import Simulation

        def run(reducer):
            sim = Simulation()
            system = Viyojit(
                sim,
                num_pages=128,
                config=ViyojitConfig(dirty_budget_pages=4, proactive=False),
                reducer=reducer,
            )
            system.start()
            mapping = system.mmap(32 * 4096)
            for page in range(32):
                system.write(mapping.base_addr + page * 4096, b"v" * 512)
            system.drain()
            return system

        plain = run(None)
        reduced = run(ReductionPipeline())
        assert plain.stats.bytes_flushed == reduced.stats.bytes_flushed  # logical
        assert reduced.ssd.stats.bytes_written < plain.ssd.stats.bytes_written / 5
