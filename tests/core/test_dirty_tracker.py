"""Unit tests for exact dirty-set tracking."""

import pytest

from repro.core.dirty_tracker import DirtyTracker


class TestBasics:
    def test_empty(self):
        tracker = DirtyTracker(budget_pages=4)
        assert tracker.count == 0
        assert len(tracker) == 0
        assert not tracker.at_budget
        assert tracker.slack == 4

    def test_invalid_budget(self):
        with pytest.raises(ValueError):
            DirtyTracker(0)

    def test_add_and_contains(self):
        tracker = DirtyTracker(4)
        tracker.add(7)
        assert 7 in tracker
        assert tracker.count == 1

    def test_add_is_idempotent(self):
        tracker = DirtyTracker(4)
        tracker.add(7)
        tracker.add(7)
        assert tracker.count == 1
        assert tracker.total_dirtied == 1

    def test_remove(self):
        tracker = DirtyTracker(4)
        tracker.add(7)
        tracker.remove(7)
        assert 7 not in tracker
        assert tracker.count == 0

    def test_remove_absent_is_safe(self):
        tracker = DirtyTracker(4)
        tracker.remove(99)
        assert tracker.count == 0

    def test_iteration(self):
        tracker = DirtyTracker(4)
        for pfn in (1, 2, 3):
            tracker.add(pfn)
        assert sorted(tracker) == [1, 2, 3]


class TestBudgetGuarantee:
    def test_at_budget(self):
        tracker = DirtyTracker(2)
        tracker.add(0)
        assert not tracker.at_budget
        tracker.add(1)
        assert tracker.at_budget
        assert tracker.slack == 0

    def test_exceeding_budget_raises(self):
        """This assertion IS the durability guarantee."""
        tracker = DirtyTracker(2)
        tracker.add(0)
        tracker.add(1)
        with pytest.raises(RuntimeError, match="dirty budget violated"):
            tracker.add(2)

    def test_room_after_removal(self):
        tracker = DirtyTracker(2)
        tracker.add(0)
        tracker.add(1)
        tracker.remove(0)
        tracker.add(2)  # does not raise
        assert tracker.count == 2

    def test_readding_at_budget_allowed(self):
        """A page already in the set can be 're-added' at the budget."""
        tracker = DirtyTracker(2)
        tracker.add(0)
        tracker.add(1)
        tracker.add(1)  # no-op, no violation
        assert tracker.count == 2


class TestEpochCounter:
    def test_counts_new_dirty_per_epoch(self):
        tracker = DirtyTracker(8)
        tracker.add(0)
        tracker.add(1)
        assert tracker.roll_epoch() == 2
        assert tracker.roll_epoch() == 0
        tracker.add(2)
        assert tracker.roll_epoch() == 1

    def test_readds_not_counted(self):
        tracker = DirtyTracker(8)
        tracker.add(0)
        tracker.add(0)
        assert tracker.roll_epoch() == 1

    def test_snapshot_is_a_copy(self):
        tracker = DirtyTracker(8)
        tracker.add(0)
        snap = tracker.snapshot()
        snap.add(99)
        assert 99 not in tracker
