"""Integration-grade unit tests for the Viyojit runtime (Fig 6 flow)."""

import random

import pytest

from repro.core.config import ViyojitConfig
from repro.core.runtime import OutOfNVDRAM, Viyojit
from repro.sim.events import Simulation
from tests.conftest import make_baseline, make_viyojit

PAGE = 4096


class TestLifecycle:
    def test_requires_start(self, sim):
        system = Viyojit(sim, num_pages=64, config=ViyojitConfig(dirty_budget_pages=8))
        with pytest.raises(RuntimeError, match="start"):
            system.mmap(PAGE)

    def test_budget_cannot_exceed_region(self, sim):
        with pytest.raises(ValueError, match="exceeds"):
            Viyojit(sim, num_pages=4, config=ViyojitConfig(dirty_budget_pages=8))

    def test_all_pages_protected_at_start(self, sim):
        system = make_viyojit(sim, num_pages=64, budget=8)
        assert system.page_table.protected_count() == 64

    def test_epoch_timer_runs(self, sim):
        system = make_viyojit(sim)
        mapping = system.mmap(PAGE)
        # Push virtual time past several epochs with repeated writes.
        for _ in range(100):
            system.write(mapping.base_addr, b"x" * 64)
        sim.run_until(sim.now + 6 * system.config.epoch_ns)
        assert system.stats.epochs >= 5


class TestMmap:
    def test_mmap_rounds_to_pages(self, viyojit):
        mapping = viyojit.mmap(100)
        assert mapping.num_pages == 1
        mapping2 = viyojit.mmap(PAGE + 1)
        assert mapping2.num_pages == 2

    def test_mappings_disjoint(self, viyojit):
        first = viyojit.mmap(3 * PAGE)
        second = viyojit.mmap(2 * PAGE)
        assert first.base_page + first.num_pages <= second.base_page

    def test_out_of_space(self, sim):
        system = make_viyojit(sim, num_pages=8, budget=4)
        with pytest.raises(OutOfNVDRAM):
            system.mmap(9 * PAGE)

    def test_mmap_invalid_size(self, viyojit):
        with pytest.raises(ValueError):
            viyojit.mmap(0)

    def test_munmap_reuses_pages(self, viyojit):
        mapping = viyojit.mmap(4 * PAGE)
        viyojit.munmap(mapping)
        again = viyojit.mmap(4 * PAGE)
        assert again.base_page == mapping.base_page

    def test_double_munmap_rejected(self, viyojit):
        mapping = viyojit.mmap(PAGE)
        viyojit.munmap(mapping)
        with pytest.raises(ValueError):
            viyojit.munmap(mapping)

    def test_munmap_flushes_dirty_pages(self, viyojit):
        mapping = viyojit.mmap(2 * PAGE)
        viyojit.write(mapping.base_addr, b"must survive release")
        viyojit.munmap(mapping)
        version = int(viyojit.region.page_version[mapping.base_page])
        assert viyojit.backing.holds_version(mapping.base_page, version)

    def test_remapped_pages_are_write_protected(self, viyojit):
        mapping = viyojit.mmap(PAGE)
        viyojit.write(mapping.base_addr, b"dirty")
        viyojit.munmap(mapping)
        again = viyojit.mmap(PAGE)
        assert viyojit.page_table.is_write_protected(again.base_page)

    def test_mapping_addr_bounds(self, viyojit):
        mapping = viyojit.mmap(PAGE)
        with pytest.raises(IndexError):
            mapping.addr(PAGE)


class TestFaultPath:
    def test_first_write_faults_once(self, viyojit):
        mapping = viyojit.mmap(PAGE)
        viyojit.write(mapping.base_addr, b"a")
        viyojit.write(mapping.base_addr + 1, b"b")
        assert viyojit.stats.write_faults == 1
        assert viyojit.stats.pages_dirtied == 1

    def test_write_costs_more_when_faulting(self, sim):
        system = make_viyojit(sim)
        mapping = system.mmap(2 * PAGE)
        before = sim.now
        system.write(mapping.base_addr, b"x")
        faulting_cost = sim.now - before
        before = sim.now
        system.write(mapping.base_addr, b"y")
        warm_cost = sim.now - before
        assert faulting_cost > warm_cost + system.machine.trap_cost_ns // 2

    def test_reads_never_fault(self, viyojit):
        mapping = viyojit.mmap(PAGE)
        viyojit.read(mapping.base_addr, 100)
        assert viyojit.stats.write_faults == 0

    def test_data_roundtrip_through_faults(self, viyojit):
        mapping = viyojit.mmap(4 * PAGE)
        payload = bytes(range(256)) * 4
        viyojit.write(mapping.base_addr + 1000, payload)
        assert viyojit.read(mapping.base_addr + 1000, len(payload)) == payload

    def test_spanning_write_dirties_all_pages(self, viyojit):
        mapping = viyojit.mmap(3 * PAGE)
        viyojit.write(mapping.base_addr + PAGE - 10, bytes(20))
        assert viyojit.dirty_count == 2


class TestBudgetEnforcement:
    def test_budget_never_exceeded_random_writes(self, sim):
        budget = 8
        system = make_viyojit(sim, num_pages=128, budget=budget)
        mapping = system.mmap(64 * PAGE)
        rng = random.Random(1)
        for _ in range(2000):
            page = rng.randrange(64)
            system.write(mapping.base_addr + page * PAGE, b"w" * 32)
            assert system.dirty_count <= budget

    def test_eviction_happens_at_budget(self, sim):
        system = make_viyojit(sim, num_pages=64, budget=2, proactive=False)
        mapping = system.mmap(8 * PAGE)
        for page in range(4):
            system.write(mapping.base_addr + page * PAGE, b"x")
        assert system.stats.sync_evictions >= 2
        assert system.dirty_count <= 2

    def test_evicted_pages_are_durable(self, sim):
        system = make_viyojit(sim, num_pages=64, budget=2, proactive=False)
        mapping = system.mmap(8 * PAGE)
        for page in range(8):
            system.write(mapping.base_addr + page * PAGE, bytes([page]) * 16)
        # All pages not currently dirty must be durable at latest version.
        for pfn, version in system.region.touched_pages():
            if pfn not in system.tracker:
                assert system.backing.holds_version(pfn, version), pfn

    def test_rewriting_dirty_pages_needs_no_eviction(self, sim):
        system = make_viyojit(sim, num_pages=64, budget=4, proactive=False)
        mapping = system.mmap(4 * PAGE)
        for _ in range(100):
            for page in range(4):
                system.write(mapping.base_addr + page * PAGE, b"hot")
        assert system.stats.sync_evictions == 0


class TestVictimSelection:
    def test_cold_page_evicted_not_hot(self, sim):
        """The least-recently-updated page goes, hot pages stay dirty."""
        system = make_viyojit(sim, num_pages=128, budget=4, proactive=False)
        mapping = system.mmap(16 * PAGE)
        hot = [0, 1, 2]
        # Dirty the cold page once, then hammer the hot ones across several
        # epochs so the dirty-bit scans observe who is recently updated.
        system.write(mapping.base_addr + 3 * PAGE, b"cold")
        for _ in range(8):
            for page in hot:
                system.write(mapping.base_addr + page * PAGE, b"hot!")
            sim.run_until(sim.now + system.config.epoch_ns)
        # Budget is 4: all four are dirty.  Dirty a fifth page.
        system.write(mapping.base_addr + 5 * PAGE, b"new")
        hot_pfns = {mapping.base_page + p for p in hot}
        assert hot_pfns <= system.tracker.snapshot()
        assert mapping.base_page + 3 not in system.tracker


class TestProactiveFlushing:
    def test_proactive_flushes_occur_under_pressure(self, sim):
        system = make_viyojit(sim, num_pages=256, budget=16)
        mapping = system.mmap(128 * PAGE)
        rng = random.Random(2)
        for _ in range(3000):
            page = rng.randrange(128)
            system.write(mapping.base_addr + page * PAGE, b"z" * 16)
        assert system.stats.proactive_flushes > 0

    def test_proactive_reduces_sync_evictions(self):
        def run(proactive):
            sim = Simulation()
            system = make_viyojit(sim, num_pages=256, budget=16, proactive=proactive)
            mapping = system.mmap(128 * PAGE)
            rng = random.Random(3)
            for _ in range(3000):
                page = rng.randrange(128)
                system.write(mapping.base_addr + page * PAGE, b"z" * 16)
            return system.stats.sync_evictions

        assert run(True) < run(False)


class TestDrain:
    def test_drain_empties_dirty_set(self, sim):
        system = make_viyojit(sim, num_pages=64, budget=16)
        mapping = system.mmap(32 * PAGE)
        for page in range(10):
            system.write(mapping.base_addr + page * PAGE, b"d")
        system.drain()
        assert system.dirty_count == 0
        assert system.flusher.outstanding == 0

    def test_drain_makes_everything_durable(self, sim):
        system = make_viyojit(sim, num_pages=64, budget=16)
        mapping = system.mmap(32 * PAGE)
        for page in range(20):
            system.write(mapping.base_addr + page * PAGE, bytes([page]) * 8)
        system.drain()
        for pfn, version in system.region.touched_pages():
            assert system.backing.holds_version(pfn, version)

    def test_drain_on_clean_system(self, viyojit):
        viyojit.drain()  # no-op, must not hang
        assert viyojit.dirty_count == 0


class TestBaseline:
    def test_baseline_never_faults(self, sim):
        system = make_baseline(sim, num_pages=64)
        mapping = system.mmap(16 * PAGE)
        for page in range(16):
            system.write(mapping.base_addr + page * PAGE, b"b")
        assert system.mmu.faults == 0

    def test_baseline_is_faster(self):
        def run(factory):
            sim = Simulation()
            system = factory(sim)
            mapping = system.mmap(32 * PAGE)
            rng = random.Random(4)
            for _ in range(1000):
                page = rng.randrange(32)
                system.write(mapping.base_addr + page * PAGE, b"q" * 16)
            return sim.now

        baseline_time = run(lambda sim: make_baseline(sim, num_pages=128))
        viyojit_time = run(lambda sim: make_viyojit(sim, num_pages=128, budget=8))
        assert viyojit_time > baseline_time

    def test_baseline_dirty_pages_is_all_touched(self, sim):
        system = make_baseline(sim, num_pages=64)
        mapping = system.mmap(4 * PAGE)
        system.write(mapping.base_addr, b"x")
        system.write(mapping.base_addr + 2 * PAGE, b"y")
        assert system.dirty_pages() == {mapping.base_page, mapping.base_page + 2}
