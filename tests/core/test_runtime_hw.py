"""Tests for the hardware-assisted Viyojit variant (section 5.4)."""

import random

import pytest

from repro.sim.events import Simulation
from tests.conftest import make_hardware_viyojit, make_viyojit

PAGE = 4096


class TestNoTrapTracking:
    def test_first_write_does_not_fault(self, sim):
        system = make_hardware_viyojit(sim)
        mapping = system.mmap(4 * PAGE)
        system.write(mapping.base_addr, b"x")
        assert system.stats.write_faults == 0
        assert system.dirty_count == 1

    def test_dirty_set_synced_with_hardware_counter(self, sim):
        system = make_hardware_viyojit(sim)
        mapping = system.mmap(8 * PAGE)
        for page in range(5):
            system.write(mapping.base_addr + page * PAGE, b"x")
        assert system.dirty_count == 5
        assert system.mmu.dirty_counter == 5

    def test_budget_still_enforced(self, sim):
        budget = 4
        system = make_hardware_viyojit(sim, num_pages=128, budget=budget)
        mapping = system.mmap(64 * PAGE)
        rng = random.Random(0)
        for _ in range(1000):
            page = rng.randrange(64)
            system.write(mapping.base_addr + page * PAGE, b"w" * 16)
            assert system.dirty_count <= budget

    def test_counter_decrements_on_flush(self, sim):
        system = make_hardware_viyojit(sim, budget=4)
        mapping = system.mmap(8 * PAGE)
        for page in range(4):
            system.write(mapping.base_addr + page * PAGE, b"x")
        system.drain()
        assert system.mmu.dirty_counter == 0
        assert system.dirty_count == 0


class TestLowerOverhead:
    def test_fewer_traps_than_software(self):
        """The whole point of the MMU offload: no per-first-write traps."""

        def run(factory):
            sim = Simulation()
            system = factory(sim)
            mapping = system.mmap(32 * PAGE)
            rng = random.Random(5)
            for _ in range(1000):
                page = rng.randrange(32)
                system.write(mapping.base_addr + page * PAGE, b"q" * 16)
            return system

        software = run(lambda sim: make_viyojit(sim, num_pages=128, budget=64))
        hardware = run(lambda sim: make_hardware_viyojit(sim, num_pages=128, budget=64))
        assert hardware.stats.write_faults < software.stats.write_faults
        assert hardware.stats.trap_time_ns < software.stats.trap_time_ns

    def test_faster_than_software_when_budget_ample(self):
        def run(factory):
            sim = Simulation()
            system = factory(sim)
            mapping = system.mmap(32 * PAGE)
            rng = random.Random(6)
            for _ in range(1000):
                page = rng.randrange(32)
                system.write(mapping.base_addr + page * PAGE, b"q" * 16)
            return sim.now

        software_time = run(lambda sim: make_viyojit(sim, num_pages=128, budget=64))
        hardware_time = run(
            lambda sim: make_hardware_viyojit(sim, num_pages=128, budget=64)
        )
        assert hardware_time < software_time


class TestInflightWrites:
    def test_write_to_inflight_page_waits_and_redirties(self, sim):
        system = make_hardware_viyojit(sim, num_pages=64, budget=8, proactive=False)
        mapping = system.mmap(8 * PAGE)
        system.write(mapping.base_addr, b"v1")
        pfn = mapping.base_page
        cost = system.flusher.issue(pfn)
        sim.clock.advance(cost)
        assert system.flusher.is_inflight(pfn)
        # This write faults on the flusher's protection, waits, re-dirties.
        system.write(mapping.base_addr, b"v2")
        assert system.stats.write_faults == 1
        assert pfn in system.tracker
        assert system.read(mapping.base_addr, 2) == b"v2"

    def test_durability_after_drain(self, sim):
        system = make_hardware_viyojit(sim, num_pages=64, budget=8)
        mapping = system.mmap(16 * PAGE)
        rng = random.Random(7)
        for _ in range(500):
            page = rng.randrange(16)
            system.write(mapping.base_addr + page * PAGE, bytes([page]) * 32)
        system.drain()
        for pfn, version in system.region.touched_pages():
            assert system.backing.holds_version(pfn, version)
