"""Crash-injection tests: the battery always covers the dirty set."""

import random

import pytest

from repro.core.crash import (
    CrashSimulator,
    SupportsRecovery,
    full_backup_battery,
    viyojit_battery,
)
from repro.power.power_model import PowerModel
from repro.sim.events import Simulation
from tests.conftest import make_baseline, make_viyojit

PAGE = 4096


def battery_for_budget(system, power_model):
    """The battery Viyojit would provision for this system's budget."""
    return viyojit_battery(
        power_model, system.config.dirty_budget_pages * system.region.page_size
    )


class TestPowerFailure:
    def test_clean_system_needs_no_energy(self, sim):
        system = make_viyojit(sim)
        model = PowerModel()
        crash = CrashSimulator(system, model, battery_for_budget(system, model))
        report = crash.power_failure()
        assert report.dirty_pages == 0
        assert report.survives

    def test_survives_at_any_instant_random_workload(self, sim):
        system = make_viyojit(sim, num_pages=256, budget=16)
        model = PowerModel()
        crash = CrashSimulator(system, model, battery_for_budget(system, model))
        mapping = system.mmap(128 * PAGE)
        rng = random.Random(11)
        for step in range(2000):
            page = rng.randrange(128)
            system.write(mapping.base_addr + page * PAGE, b"w" * 24)
            if step % 100 == 0:
                report = crash.power_failure()
                assert report.survives, f"would lose data at step {step}"
                assert report.energy_margin_joules >= 0

    def test_underprovisioned_battery_loses_pages(self, sim):
        system = make_viyojit(sim, num_pages=256, budget=16, proactive=False)
        model = PowerModel()
        # Battery covers only half the budget.
        half = viyojit_battery(model, 8 * system.region.page_size)
        crash = CrashSimulator(system, model, half)
        mapping = system.mmap(64 * PAGE)
        for page in range(16):
            system.write(mapping.base_addr + page * PAGE, b"x")
        report = crash.power_failure()
        assert not report.survives
        assert len(report.pages_lost) > 0

    def test_flush_seconds_bounded_by_budget(self, sim):
        """Section 8: shutdown flush time is bounded by the budget."""
        system = make_viyojit(sim, num_pages=256, budget=16)
        model = PowerModel()
        crash = CrashSimulator(system, model, battery_for_budget(system, model))
        mapping = system.mmap(128 * PAGE)
        rng = random.Random(12)
        for _ in range(1000):
            system.write(mapping.base_addr + rng.randrange(128) * PAGE, b"y")
        bound = model.flush_time_seconds(16 * PAGE)
        assert crash.shutdown_flush_seconds() <= bound + 1e-12


class TestRecovery:
    def test_recovery_intact_after_workload(self, sim):
        system = make_viyojit(sim, num_pages=256, budget=16)
        model = PowerModel()
        crash = CrashSimulator(system, model, battery_for_budget(system, model))
        mapping = system.mmap(64 * PAGE)
        rng = random.Random(13)
        for _ in range(1500):
            page = rng.randrange(64)
            system.write(
                mapping.base_addr + page * PAGE + rng.randrange(100),
                bytes([rng.randrange(256)]) * 64,
            )
        report = crash.crash_and_recover()
        assert report.intact
        assert report.pages_checked > 0

    def test_recovery_detects_losses_when_underprovisioned(self, sim):
        system = make_viyojit(sim, num_pages=256, budget=16, proactive=False)
        model = PowerModel()
        tiny = viyojit_battery(model, 2 * system.region.page_size)
        crash = CrashSimulator(system, model, tiny)
        mapping = system.mmap(64 * PAGE)
        for page in range(16):
            system.write(mapping.base_addr + page * PAGE, b"data")
        report = crash.crash_and_recover()
        assert not report.intact
        assert report.pages_lost

    def test_baseline_needs_full_battery(self, sim):
        system = make_baseline(sim, num_pages=256)
        model = PowerModel()
        full = full_backup_battery(model, 256 * PAGE)
        crash = CrashSimulator(system, model, full)
        mapping = system.mmap(128 * PAGE)
        for page in range(128):
            system.write(mapping.base_addr + page * PAGE, b"b")
        report = crash.power_failure()
        assert report.survives
        assert report.dirty_pages == 128


class TestSupportsRecoveryProtocol:
    """CrashSimulator demands an explicit capability contract, not luck."""

    def test_viyojit_satisfies_protocol(self, sim):
        system = make_viyojit(sim)
        assert isinstance(system, SupportsRecovery)

    def test_baseline_opts_out_via_flag(self, sim):
        # The baseline has no backing store to recover from; it declares
        # `assumes_full_battery` instead of satisfying the protocol.
        system = make_baseline(sim)
        assert not isinstance(system, SupportsRecovery)
        assert system.assumes_full_battery is True
        model = PowerModel()
        CrashSimulator(system, model, full_backup_battery(model, 256 * PAGE))

    def test_unknown_system_is_rejected_loudly(self, sim):
        class Imposter:
            """Has pages but neither a backing store nor the opt-out."""

            def __init__(self):
                real = make_viyojit(sim)
                self.region = real.region
                self.config = real.config

            def dirty_pages(self):
                return set()

        model = PowerModel()
        battery = full_backup_battery(model, 4 * PAGE)
        with pytest.raises(TypeError) as excinfo:
            CrashSimulator(Imposter(), model, battery)
        assert "Imposter" in str(excinfo.value)

    def test_flag_must_be_literal_true(self, sim):
        # A truthy-but-not-True flag (e.g. a leftover string) must not
        # silently grant the full-battery exemption.
        class Sloppy:
            assumes_full_battery = "yes"

            def __init__(self):
                real = make_viyojit(sim)
                self.region = real.region
                self.config = real.config

            def dirty_pages(self):
                return set()

        model = PowerModel()
        with pytest.raises(TypeError):
            CrashSimulator(Sloppy(), model, full_backup_battery(model, PAGE))


class TestBatteryEconomics:
    def test_viyojit_battery_is_fraction_of_baseline(self):
        """The headline claim: 11% of the battery for the same durability."""
        model = PowerModel()
        nvdram_bytes = 60 * 1024**3
        full = full_backup_battery(model, nvdram_bytes)
        small = viyojit_battery(model, int(0.11 * nvdram_bytes))
        assert small.nominal_joules / full.nominal_joules == pytest.approx(
            0.11, rel=0.01
        )

    def test_retune_budget_after_degradation(self, sim):
        """Section 8: battery wear shrinks the budget instead of killing
        NV-DRAM."""
        system = make_viyojit(sim, num_pages=256, budget=16)
        model = PowerModel()
        battery = battery_for_budget(system, model)
        crash = CrashSimulator(system, model, battery)
        before = crash.retune_budget()
        battery.degrade(0.5)
        after = crash.retune_budget()
        assert after == pytest.approx(before * 0.5, abs=1)
        assert after < before
