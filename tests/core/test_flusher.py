"""Unit tests for the flush engine: ordering, completion, guards."""

import pytest

from repro.core.dirty_tracker import DirtyTracker
from repro.core.flusher import Flusher
from repro.core.stats import ViyojitStats
from repro.mem.machine import MachineModel
from repro.mem.mmu import MMU
from repro.mem.nvdram import NVDRAMRegion
from repro.mem.page_table import PageTable
from repro.mem.tlb import TLB
from repro.sim.events import Simulation
from repro.storage.backing_store import BackingStore
from repro.storage.ssd import SSD


def build(num_pages=16, budget=8, max_outstanding=4):
    sim = Simulation()
    machine = MachineModel()
    region = NVDRAMRegion(num_pages, machine.page_size)
    table = PageTable(num_pages)
    table.write_protected[:] = False
    mmu = MMU(table, TLB(num_pages, machine.tlb_entries), machine)
    tracker = DirtyTracker(budget)
    flusher = Flusher(
        sim=sim,
        mmu=mmu,
        region=region,
        ssd=SSD(),
        backing=BackingStore(num_pages, machine.page_size),
        tracker=tracker,
        stats=ViyojitStats(),
        max_outstanding=max_outstanding,
    )
    return sim, region, tracker, flusher


class TestIssue:
    def test_issue_protects_page_first(self):
        sim, region, tracker, flusher = build()
        region.write(0, b"data")
        tracker.add(0)
        flusher.issue(0)
        assert flusher.mmu.page_table.is_write_protected(0)

    def test_issue_returns_cpu_cost(self):
        sim, region, tracker, flusher = build()
        region.write(0, b"data")
        tracker.add(0)
        cost = flusher.issue(0)
        assert cost == flusher.mmu.machine.pte_update_cost_ns

    def test_page_stays_dirty_until_completion(self):
        """In-flight pages still consume battery budget."""
        sim, region, tracker, flusher = build()
        region.write(0, b"data")
        tracker.add(0)
        flusher.issue(0)
        assert 0 in tracker
        assert flusher.is_inflight(0)

    def test_completion_persists_and_cleans(self):
        sim, region, tracker, flusher = build()
        region.write(0, b"data")
        tracker.add(0)
        flusher.issue(0)
        sim.run_until(flusher.completion_time(0))
        assert 0 not in tracker
        assert not flusher.is_inflight(0)
        assert flusher.backing.read(0)[:4] == b"data"
        assert flusher.backing.version(0) == 1

    def test_snapshot_taken_at_issue_time(self):
        """The durable copy is the protect-time contents (section 5.1).

        A write after issue would fault in the full runtime; here we poke
        the region directly to prove the flusher captured a snapshot.
        """
        sim, region, tracker, flusher = build()
        region.write(0, b"old!")
        tracker.add(0)
        flusher.issue(0)
        region.write(0, b"new!")  # bypasses MMU: simulates the race
        sim.run_until(flusher.completion_time(0))
        assert flusher.backing.read(0)[:4] == b"old!"
        # But the version recorded matches the snapshot, so the newer
        # region version is correctly seen as not-yet-durable.
        assert flusher.backing.version(0) < region.page_version[0]


class TestGuards:
    def test_double_issue_rejected(self):
        sim, region, tracker, flusher = build()
        region.write(0, b"x")
        tracker.add(0)
        flusher.issue(0)
        with pytest.raises(RuntimeError, match="already being flushed"):
            flusher.issue(0)

    def test_clean_page_rejected(self):
        sim, region, tracker, flusher = build()
        with pytest.raises(RuntimeError, match="not dirty"):
            flusher.issue(0)

    def test_queue_limit_enforced(self):
        sim, region, tracker, flusher = build(max_outstanding=2)
        for pfn in range(3):
            region.write(pfn * 4096, b"x")
            tracker.add(pfn)
        flusher.issue(0)
        flusher.issue(1)
        assert not flusher.has_slot()
        with pytest.raises(RuntimeError, match="queue full"):
            flusher.issue(2)

    def test_earliest_completion(self):
        sim, region, tracker, flusher = build()
        assert flusher.earliest_completion() is None
        region.write(0, b"x")
        tracker.add(0)
        flusher.issue(0)
        assert flusher.earliest_completion() == flusher.completion_time(0)

    def test_outstanding_count(self):
        sim, region, tracker, flusher = build()
        for pfn in range(2):
            region.write(pfn * 4096, b"x")
            tracker.add(pfn)
            flusher.issue(pfn)
        assert flusher.outstanding == 2
        sim.run_until(max(flusher.completion_time(0), flusher.completion_time(1)))
        assert flusher.outstanding == 0
