"""Tests for the section 7 fine-grained (sub-page) dirty tracking."""

import random

import pytest

from repro.core.config import ViyojitConfig
from repro.core.finegrain import BlockTracker, FineGrainViyojit
from repro.sim.events import Simulation

PAGE = 4096


def make_finegrain(sim, num_pages=256, budget_pages=4, block_size=256, **cfg):
    system = FineGrainViyojit(
        sim,
        num_pages=num_pages,
        config=ViyojitConfig(dirty_budget_pages=budget_pages, **cfg),
        block_size=block_size,
    )
    system.start()
    return system


@pytest.fixture
def sim():
    return Simulation()


class TestBlockTracker:
    def test_validation(self):
        with pytest.raises(ValueError):
            BlockTracker(page_size=4096, block_size=100, budget_bytes=4096)
        with pytest.raises(ValueError):
            BlockTracker(page_size=4096, block_size=256, budget_bytes=0)

    def test_single_block(self):
        tracker = BlockTracker(4096, 256, budget_bytes=4096)
        assert tracker.mark_range(0, 0, 100) == 256
        assert tracker.dirty_bytes == 256

    def test_range_spanning_blocks(self):
        tracker = BlockTracker(4096, 256, budget_bytes=4096)
        added = tracker.mark_range(0, 200, 200)  # crosses block 0/1 boundary
        assert added == 512

    def test_remarking_adds_nothing(self):
        tracker = BlockTracker(4096, 256, budget_bytes=4096)
        tracker.mark_range(0, 0, 256)
        assert tracker.would_add(0, 0, 256) == 0
        assert tracker.mark_range(0, 0, 100) == 0
        assert tracker.dirty_bytes == 256

    def test_budget_violation_raises(self):
        tracker = BlockTracker(4096, 256, budget_bytes=512)
        tracker.mark_range(0, 0, 512)
        with pytest.raises(RuntimeError, match="budget violated"):
            tracker.mark_range(1, 0, 1)

    def test_clean_page_frees_bytes(self):
        tracker = BlockTracker(4096, 256, budget_bytes=4096)
        tracker.mark_range(0, 0, 1000)
        freed = tracker.clean_page(0)
        assert freed == 1024
        assert tracker.dirty_bytes == 0

    def test_zero_length(self):
        tracker = BlockTracker(4096, 256, budget_bytes=4096)
        assert tracker.would_add(0, 0, 0) == 0
        assert tracker.mark_range(0, 0, 0) == 0

    def test_dirty_pages_membership(self):
        tracker = BlockTracker(4096, 256, budget_bytes=8192)
        tracker.mark_range(3, 0, 10)
        tracker.mark_range(7, 0, 10)
        assert tracker.dirty_pages() == {3, 7}


class TestFineGrainRuntime:
    def test_holds_more_pages_than_page_budget(self, sim):
        """The headline: small writes to many pages fit one battery."""
        system = make_finegrain(sim, budget_pages=4, block_size=256)
        mapping = system.mmap(64 * PAGE)
        for page in range(40):
            system.write(mapping.base_addr + page * PAGE, b"x" * 100)
        assert system.dirty_count == 40          # pages dirty
        assert system.blocks.dirty_bytes == 40 * 256  # but only 10 KiB of dirt
        assert system.stats.sync_evictions == 0

    def test_byte_budget_never_exceeded(self, sim):
        budget_pages = 2
        system = make_finegrain(sim, budget_pages=budget_pages, block_size=256)
        mapping = system.mmap(64 * PAGE)
        rng = random.Random(1)
        for _ in range(800):
            page = rng.randrange(64)
            offset = rng.randrange(0, PAGE - 300)
            system.write(mapping.base_addr + page * PAGE + offset, b"y" * 300)
            assert system.blocks.dirty_bytes <= budget_pages * PAGE

    def test_data_roundtrip(self, sim):
        system = make_finegrain(sim, budget_pages=2)
        mapping = system.mmap(32 * PAGE)
        rng = random.Random(2)
        expected = {}
        for _ in range(300):
            page = rng.randrange(32)
            data = bytes([rng.randrange(256)]) * 64
            system.write(mapping.base_addr + page * PAGE, data)
            expected[page] = data
        for page, data in expected.items():
            assert system.read(mapping.base_addr + page * PAGE, 64) == data

    def test_flushes_only_dirty_blocks(self, sim):
        """SSD traffic shrinks to the dirty-block footprint."""
        system = make_finegrain(sim, budget_pages=1, block_size=256,
                                proactive=False)
        mapping = system.mmap(64 * PAGE)
        # One 256B block per page; the 1-page byte budget (4096B) fits 16
        # blocks, the 17th write forces an eviction of ~256B, not 4 KiB.
        for page in range(20):
            system.write(mapping.base_addr + page * PAGE, b"z" * 200)
        assert system.stats.sync_evictions > 0
        avg_flush = system.stats.bytes_flushed / system.stats.pages_flushed
        assert avg_flush < PAGE / 4

    def test_drain_leaves_everything_durable(self, sim):
        system = make_finegrain(sim, budget_pages=2)
        mapping = system.mmap(32 * PAGE)
        rng = random.Random(3)
        for _ in range(400):
            page = rng.randrange(32)
            system.write(
                mapping.base_addr + page * PAGE + rng.randrange(3800),
                bytes([rng.randrange(256)]) * 100,
            )
        system.drain()
        assert system.blocks.dirty_bytes == 0
        for pfn, version in system.region.touched_pages():
            assert system.backing.holds_version(pfn, version)

    def test_crash_energy_uses_byte_accounting(self, sim):
        from repro.core.crash import CrashSimulator, viyojit_battery
        from repro.power.power_model import PowerModel

        system = make_finegrain(sim, budget_pages=4, block_size=256)
        model = PowerModel()
        battery = viyojit_battery(model, 4 * PAGE)
        crash = CrashSimulator(system, model, battery)
        mapping = system.mmap(64 * PAGE)
        for page in range(40):
            system.write(mapping.base_addr + page * PAGE, b"q" * 100)
        report = crash.power_failure()
        # 40 dirty pages but only 40 blocks of dirt: the byte-granular
        # flush needs energy for 10 KiB, not 160 KiB.
        assert report.dirty_pages == 40
        assert report.dirty_bytes == 40 * 256
        assert report.survives

    def test_write_racing_inflight_flush_preserved(self, sim):
        system = make_finegrain(sim, budget_pages=4, proactive=False)
        mapping = system.mmap(8 * PAGE)
        system.write(mapping.base_addr, b"first")
        pfn = mapping.base_page
        cost = system.flusher.issue(pfn)
        sim.clock.advance(cost)
        system.write(mapping.base_addr, b"newer")
        system.drain()
        assert system.backing.read(pfn)[:5] == b"newer"
