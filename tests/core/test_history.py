"""Unit tests for the least-recently-updated history."""

import numpy as np
import pytest

from repro.core.history import UpdateHistory, _popcount


class TestPopcount:
    def test_known_values(self):
        values = np.array([0, 1, 3, 0xFF, 2**63], dtype=np.uint64)
        assert _popcount(values).tolist() == [0, 1, 2, 8, 1]

    def test_all_ones(self):
        values = np.array([0xFFFFFFFFFFFFFFFF], dtype=np.uint64)
        assert _popcount(values).tolist() == [64]


class TestRecordScan:
    def test_epoch_advances(self):
        history = UpdateHistory(8)
        history.record_scan(np.array([0]))
        history.record_scan(np.array([], dtype=np.int64))
        assert history.epoch == 2

    def test_last_update_tracked(self):
        history = UpdateHistory(8)
        history.record_scan(np.array([3]))      # epoch 0
        history.record_scan(np.array([], dtype=np.int64))  # epoch 1
        history.record_scan(np.array([3, 5]))   # epoch 2
        assert history.last_update_epoch(3) == 2
        assert history.last_update_epoch(5) == 2
        assert history.last_update_epoch(0) == -1

    def test_update_count_window(self):
        history = UpdateHistory(8, history_epochs=4)
        for _ in range(3):
            history.record_scan(np.array([1]))
        assert history.update_count(1) == 3

    def test_window_forgets_old_epochs(self):
        history = UpdateHistory(8, history_epochs=2)
        history.record_scan(np.array([1]))
        history.record_scan(np.array([], dtype=np.int64))
        history.record_scan(np.array([], dtype=np.int64))
        assert history.update_count(1) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            UpdateHistory(0)
        with pytest.raises(ValueError):
            UpdateHistory(8, history_epochs=65)
        with pytest.raises(ValueError):
            UpdateHistory(8, history_epochs=0)

    def test_full_64_epoch_window(self):
        history = UpdateHistory(4, history_epochs=64)
        for _ in range(70):
            history.record_scan(np.array([2]))
        assert history.update_count(2) == 64


class TestColdest:
    def test_never_updated_is_coldest(self):
        history = UpdateHistory(8)
        history.record_scan(np.array([1]))
        assert history.coldest([1, 2], k=1) == [2]

    def test_older_update_is_colder(self):
        history = UpdateHistory(8)
        history.record_scan(np.array([1]))  # epoch 0
        history.record_scan(np.array([2]))  # epoch 1
        assert history.coldest([1, 2], k=2) == [1, 2]

    def test_tie_broken_by_popularity(self):
        history = UpdateHistory(8)
        history.record_scan(np.array([1, 2]))  # both epoch 0
        history.record_scan(np.array([], dtype=np.int64))
        history.record_scan(np.array([1, 2]))  # both epoch 2; equal so far
        history.record_scan(np.array([1]))     # 1 gains popularity
        # last update: 1 -> epoch 3, 2 -> epoch 2; 2 is older hence colder.
        assert history.coldest([1, 2], k=1) == [2]

    def test_deterministic_page_number_tiebreak(self):
        history = UpdateHistory(8)
        assert history.coldest([5, 3, 7], k=3) == [3, 5, 7]

    def test_k_larger_than_candidates(self):
        history = UpdateHistory(8)
        assert history.coldest([2, 1], k=10) == [1, 2]

    def test_empty_candidates(self):
        history = UpdateHistory(8)
        assert history.coldest([], k=3) == []
        assert history.coldest([1], k=0) == []


class TestColdestPartitionEquivalence:
    """The argpartition fast path orders exactly like the lexsort."""

    @staticmethod
    def _reference_coldest(history, candidates, k):
        pfns = np.asarray(candidates, dtype=np.int64)
        last, counts = history._ranking_keys(pfns)
        order = np.lexsort((pfns, counts, last))
        return [int(p) for p in pfns[order[: min(k, len(pfns))]]]

    def test_matches_lexsort_on_random_histories(self):
        import random

        rng = random.Random(13)
        for trial in range(50):
            num_pages = rng.randrange(4, 64)
            history = UpdateHistory(num_pages, history_epochs=rng.choice([2, 8, 64]))
            for _ in range(rng.randrange(0, 30)):
                updated = sorted(
                    rng.sample(range(num_pages), rng.randrange(0, num_pages))
                )
                history.record_scan(np.array(updated, dtype=np.int64))
            candidates = rng.sample(range(num_pages), rng.randrange(1, num_pages + 1))
            for k in (1, 2, len(candidates) // 2, len(candidates), len(candidates) + 5):
                if k <= 0:
                    continue
                assert history.coldest(candidates, k) == self._reference_coldest(
                    history, candidates, k
                ), (trial, k)

    def test_overflow_guard_falls_back_to_lexsort(self):
        history = UpdateHistory(8)
        history.record_scan(np.array([1]))
        expected = history.coldest([1, 2, 3], k=2)
        # Force the exact-arithmetic bound to trip: the fallback must
        # produce the identical ordering.
        history.epoch = 2**60
        assert history.coldest([1, 2, 3], k=2) == expected


class TestHottest:
    def test_hottest_is_reverse_of_coldest_ordering(self):
        history = UpdateHistory(8)
        history.record_scan(np.array([1]))
        history.record_scan(np.array([2]))
        assert history.hottest([1, 2, 3], k=1) == [2]

    def test_hottest_prefers_popular(self):
        history = UpdateHistory(8)
        history.record_scan(np.array([1, 2]))
        history.record_scan(np.array([1, 2]))
        history.record_scan(np.array([1]))
        assert history.hottest([1, 2], k=1) == [1]
