"""Every victim policy must preserve the durability invariants.

The policy only chooses *which* page to flush; correctness (budget bound,
no lost updates, crash survivability) must hold regardless — including
under the adversarial most-recently-updated policy.
"""

import random

import pytest

from repro.core.config import ViyojitConfig
from repro.core.crash import CrashSimulator, viyojit_battery
from repro.core.policies import POLICY_NAMES
from repro.core.runtime import Viyojit
from repro.power.power_model import PowerModel
from repro.sim.events import Simulation

PAGE = 4096
BUDGET = 12


def run_workload(policy: str):
    sim = Simulation()
    system = Viyojit(
        sim,
        num_pages=256,
        config=ViyojitConfig(dirty_budget_pages=BUDGET, victim_policy=policy),
    )
    system.start()
    mapping = system.mmap(96 * PAGE)
    rng = random.Random(hash(policy) & 0xFFFF)
    for step in range(1200):
        page = int(rng.paretovariate(1.1)) % 96
        system.write(
            mapping.base_addr + page * PAGE + rng.randrange(3900),
            step.to_bytes(4, "little"),
        )
    return sim, system


@pytest.mark.parametrize("policy", POLICY_NAMES)
class TestPolicyInvariants:
    def test_budget_never_exceeded(self, policy):
        _sim, system = run_workload(policy)
        assert system.stats.peak_dirty_pages <= BUDGET

    def test_crash_survivable(self, policy):
        _sim, system = run_workload(policy)
        model = PowerModel()
        crash = CrashSimulator(
            system, model, viyojit_battery(model, BUDGET * PAGE)
        )
        assert crash.power_failure().survives

    def test_drain_durable(self, policy):
        _sim, system = run_workload(policy)
        system.drain()
        for pfn, version in system.region.touched_pages():
            assert system.backing.holds_version(pfn, version)


def test_all_policies_complete_same_logical_work():
    """Different policies, identical final memory contents."""
    images = {}
    for policy in POLICY_NAMES:
        sim = Simulation()
        system = Viyojit(
            sim,
            num_pages=128,
            config=ViyojitConfig(dirty_budget_pages=8, victim_policy=policy),
        )
        system.start()
        mapping = system.mmap(48 * PAGE)
        rng = random.Random(77)  # same stream for every policy
        for step in range(600):
            page = rng.randrange(48)
            system.write(mapping.base_addr + page * PAGE, step.to_bytes(8, "little"))
        images[policy] = {
            pfn: system.region.page_bytes(pfn)
            for pfn, _v in system.region.touched_pages()
        }
    reference = images[POLICY_NAMES[0]]
    for policy, image in images.items():
        assert image == reference, f"{policy} diverged from reference contents"
