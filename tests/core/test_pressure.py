"""Unit tests for the EWMA dirty-page-pressure estimator."""

import pytest

from repro.core.pressure import PressureEstimator


class TestEWMA:
    def test_starts_at_zero(self):
        assert PressureEstimator().pressure == 0.0

    def test_single_observation(self):
        estimator = PressureEstimator(alpha=0.75)
        assert estimator.observe(100) == pytest.approx(75.0)

    def test_paper_weights(self):
        """0.75 on current epoch, 0.25 on the previous prediction."""
        estimator = PressureEstimator(alpha=0.75)
        estimator.observe(100)  # -> 75
        assert estimator.observe(0) == pytest.approx(0.25 * 75)

    def test_converges_to_steady_state(self):
        estimator = PressureEstimator(alpha=0.75)
        for _ in range(50):
            estimator.observe(40)
        assert estimator.pressure == pytest.approx(40, rel=1e-6)

    def test_reacts_quickly_to_bursts(self):
        estimator = PressureEstimator(alpha=0.75)
        for _ in range(10):
            estimator.observe(5)
        estimator.observe(1000)
        assert estimator.pressure > 700

    def test_observation_counter(self):
        estimator = PressureEstimator()
        estimator.observe(1)
        estimator.observe(2)
        assert estimator.observations == 2

    def test_negative_observation_rejected(self):
        estimator = PressureEstimator()
        with pytest.raises(ValueError):
            estimator.observe(-1)

    def test_bad_alpha(self):
        with pytest.raises(ValueError):
            PressureEstimator(alpha=0)
        with pytest.raises(ValueError):
            PressureEstimator(alpha=1.5)

    def test_alpha_one_tracks_exactly(self):
        estimator = PressureEstimator(alpha=1.0)
        estimator.observe(7)
        estimator.observe(13)
        assert estimator.pressure == 13


class TestThreshold:
    def test_threshold_is_budget_minus_pressure(self):
        estimator = PressureEstimator(alpha=1.0)
        estimator.observe(30)
        assert estimator.threshold(100) == 70

    def test_threshold_floors_at_zero(self):
        estimator = PressureEstimator(alpha=1.0)
        estimator.observe(500)
        assert estimator.threshold(100) == 0

    def test_threshold_with_no_pressure(self):
        assert PressureEstimator().threshold(100) == 100

    def test_threshold_rounds(self):
        estimator = PressureEstimator(alpha=0.75)
        estimator.observe(2)  # pressure = 1.5 -> rounds to 2
        assert estimator.threshold(10) == 8

    def test_invalid_budget(self):
        with pytest.raises(ValueError):
            PressureEstimator().threshold(0)
