"""Tests for the byte-denominated background copier in fine-grain mode."""

import random

import pytest

from repro.core.config import ViyojitConfig
from repro.core.finegrain import FineGrainViyojit
from repro.sim.events import Simulation

PAGE = 4096


def make(budget_pages=4, block_size=256, **cfg):
    sim = Simulation()
    system = FineGrainViyojit(
        sim,
        num_pages=512,
        config=ViyojitConfig(dirty_budget_pages=budget_pages, **cfg),
        block_size=block_size,
    )
    system.start()
    return sim, system


class TestByteRollEpoch:
    def test_counts_new_bytes(self):
        _sim, system = make()
        mapping = system.mmap(64 * PAGE)
        system.write(mapping.base_addr, b"x" * 200)   # 1 block
        system.write(mapping.base_addr + PAGE, b"x" * 600)  # 3 blocks
        assert system.blocks.epoch_new_bytes == 4 * 256

    def test_remarks_not_counted(self):
        _sim, system = make()
        mapping = system.mmap(64 * PAGE)
        system.write(mapping.base_addr, b"x" * 100)
        system.write(mapping.base_addr, b"y" * 100)  # same block
        assert system.blocks.epoch_new_bytes == 256

    def test_roll_resets(self):
        _sim, system = make()
        mapping = system.mmap(64 * PAGE)
        system.write(mapping.base_addr, b"x" * 100)
        assert system.blocks.roll_epoch() == 256
        assert system.blocks.roll_epoch() == 0


class TestByteProactiveFlushing:
    def test_proactive_flushes_without_blocking(self):
        """A sustained small-write stream spread over epochs is absorbed
        by the byte-denominated copier, not by blocking evictions."""
        sim, system = make(budget_pages=8)
        mapping = system.mmap(256 * PAGE)
        rng = random.Random(1)
        for step in range(600):
            page = rng.randrange(256)
            system.write(mapping.base_addr + page * PAGE, b"w" * 100)
            if step % 20 == 19:
                sim.run_until(sim.now + system.config.epoch_ns)
        assert system.stats.proactive_flushes > 0
        assert system.stats.sync_evictions < system.stats.proactive_flushes / 4

    def test_threshold_tracks_byte_pressure(self):
        sim, system = make(budget_pages=8)
        mapping = system.mmap(256 * PAGE)
        assert system._byte_threshold == system.blocks.budget_bytes
        rng = random.Random(2)
        for step in range(200):
            system.write(
                mapping.base_addr + rng.randrange(256) * PAGE, b"w" * 100
            )
        sim.run_until(sim.now + 2 * system.config.epoch_ns)
        # Pressure observed -> threshold strictly below the byte budget.
        assert system._byte_threshold < system.blocks.budget_bytes

    def test_byte_budget_still_never_exceeded(self):
        sim, system = make(budget_pages=2)
        mapping = system.mmap(256 * PAGE)
        rng = random.Random(3)
        for _ in range(800):
            page = rng.randrange(256)
            system.write(mapping.base_addr + page * PAGE, b"w" * 300)
            assert system.blocks.dirty_bytes <= system.blocks.budget_bytes

    def test_drain_clears_inflight_byte_accounting(self):
        sim, system = make(budget_pages=4)
        mapping = system.mmap(64 * PAGE)
        for page in range(30):
            system.write(mapping.base_addr + page * PAGE, b"w" * 100)
        system.drain()
        assert system.blocks.dirty_bytes == 0
        assert system._inflight_bytes() == 0

    def test_disabled_proactive_means_sync_only(self):
        sim, system = make(budget_pages=2, proactive=False)
        mapping = system.mmap(64 * PAGE)
        for page in range(40):
            system.write(mapping.base_addr + page * PAGE, b"w" * 100)
        assert system.stats.proactive_flushes == 0
        assert system.stats.sync_evictions > 0
