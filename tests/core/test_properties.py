"""Property-based tests (hypothesis) for the core invariants.

These are the paper's guarantees stated as machine-checked properties:

1. The dirty count never exceeds the budget, for *any* access sequence.
2. Every page outside the dirty set is durable at its latest version, for
   any access sequence (no lost updates).
3. A power failure at any prefix of any sequence is survivable with the
   budget-sized battery.
4. Data read back always equals the last data written.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.config import ViyojitConfig
from repro.core.crash import CrashSimulator, viyojit_battery
from repro.core.dirty_tracker import DirtyTracker
from repro.core.history import UpdateHistory
from repro.core.pressure import PressureEstimator
from repro.core.runtime import Viyojit
from repro.power.power_model import PowerModel
from repro.sim.events import Simulation

PAGE = 4096
REGION_PAGES = 64
HEAP_PAGES = 32


def build_system(budget: int, proactive: bool = True) -> Viyojit:
    sim = Simulation()
    system = Viyojit(
        sim,
        num_pages=REGION_PAGES,
        config=ViyojitConfig(dirty_budget_pages=budget, proactive=proactive),
    )
    system.start()
    return system


# Access sequences: (page, offset, payload byte) triples.
accesses = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=HEAP_PAGES - 1),
        st.integers(min_value=0, max_value=PAGE - 16),
        st.integers(min_value=0, max_value=255),
    ),
    min_size=1,
    max_size=120,
)

budgets = st.integers(min_value=1, max_value=HEAP_PAGES)


@settings(max_examples=40, deadline=None)
@given(seq=accesses, budget=budgets)
def test_dirty_count_never_exceeds_budget(seq, budget):
    system = build_system(budget)
    mapping = system.mmap(HEAP_PAGES * PAGE)
    for page, offset, byte in seq:
        system.write(mapping.base_addr + page * PAGE + offset, bytes([byte]) * 8)
        assert system.dirty_count <= budget


@settings(max_examples=30, deadline=None)
@given(seq=accesses, budget=budgets)
def test_clean_pages_always_durable(seq, budget):
    system = build_system(budget)
    mapping = system.mmap(HEAP_PAGES * PAGE)
    for page, offset, byte in seq:
        system.write(mapping.base_addr + page * PAGE + offset, bytes([byte]) * 8)
    inflight = {
        pfn for pfn in system.tracker if system.flusher.is_inflight(pfn)
    }
    for pfn, version in system.region.touched_pages():
        if pfn not in system.tracker and pfn not in inflight:
            assert system.backing.holds_version(pfn, version)


@settings(max_examples=25, deadline=None)
@given(seq=accesses, budget=budgets)
def test_power_failure_survivable_at_every_prefix(seq, budget):
    system = build_system(budget)
    model = PowerModel()
    battery = viyojit_battery(model, budget * PAGE)
    crash = CrashSimulator(system, model, battery)
    mapping = system.mmap(HEAP_PAGES * PAGE)
    for page, offset, byte in seq:
        system.write(mapping.base_addr + page * PAGE + offset, bytes([byte]) * 8)
        assert crash.power_failure().survives


@settings(max_examples=30, deadline=None)
@given(seq=accesses, budget=budgets)
def test_read_your_writes(seq, budget):
    system = build_system(budget)
    mapping = system.mmap(HEAP_PAGES * PAGE)
    shadow = {}
    for page, offset, byte in seq:
        addr = mapping.base_addr + page * PAGE + offset
        payload = bytes([byte]) * 8
        system.write(addr, payload)
        shadow[addr] = payload
    for addr, payload in shadow.items():
        got = system.read(addr, 8)
        # Later writes may overlap; only check addresses written once last.
        if all(
            other == addr or other + 8 <= addr or other >= addr + 8
            for other in shadow
        ):
            assert got == payload


@settings(max_examples=50, deadline=None)
@given(
    ops=st.lists(
        st.tuples(st.sampled_from(["add", "remove"]), st.integers(0, 63)),
        max_size=200,
    ),
    budget=st.integers(min_value=1, max_value=64),
)
def test_tracker_count_matches_set_semantics(ops, budget):
    tracker = DirtyTracker(budget)
    model = set()
    for op, pfn in ops:
        if op == "add":
            if pfn not in model and len(model) >= budget:
                continue  # runtime would evict first
            tracker.add(pfn)
            model.add(pfn)
        else:
            tracker.remove(pfn)
            model.discard(pfn)
        assert tracker.count == len(model)
        assert tracker.snapshot() == model


@settings(max_examples=50, deadline=None)
@given(
    scans=st.lists(
        st.lists(st.integers(0, 31), max_size=8),
        min_size=1,
        max_size=70,
    )
)
def test_history_coldest_matches_bruteforce(scans):
    """coldest() agrees with a brute-force sort on (last_update, count)."""
    history = UpdateHistory(32, history_epochs=16)
    last = {}
    window = []
    for epoch, pfns in enumerate(scans):
        history.record_scan(np.array(sorted(set(pfns)), dtype=np.int64))
        for pfn in set(pfns):
            last[pfn] = epoch
        window.append(set(pfns))
        window = window[-16:]

    candidates = list(range(32))

    def brute_key(pfn):
        count = sum(1 for epoch_set in window if pfn in epoch_set)
        # Updates older than the history window are gone: a page with no
        # in-window updates ranks as never-observed, even if it was updated
        # before the window slid past it.
        last_update = last.get(pfn, -1) if count > 0 else -1
        return (last_update, count, pfn)

    expected = sorted(candidates, key=brute_key)[:5]
    assert history.coldest(candidates, 5) == expected


@settings(max_examples=60, deadline=None)
@given(
    observations=st.lists(st.integers(0, 10_000), min_size=1, max_size=50),
    alpha=st.floats(min_value=0.01, max_value=1.0),
)
def test_pressure_bounded_by_max_observation(observations, alpha):
    estimator = PressureEstimator(alpha=alpha)
    for value in observations:
        estimator.observe(value)
        assert 0 <= estimator.pressure <= max(observations) + 1e-9
