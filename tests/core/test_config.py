"""Unit tests for ViyojitConfig validation."""

import pytest

from repro.core.config import ViyojitConfig
from repro.sim.clock import NS_PER_MS


class TestDefaults:
    def test_paper_defaults(self):
        config = ViyojitConfig(dirty_budget_pages=100)
        assert config.epoch_ns == NS_PER_MS          # 1 ms epochs
        assert config.history_epochs == 64           # 64-epoch history
        assert config.pressure_alpha == 0.75         # EWMA weight
        assert config.max_outstanding_io == 16       # 16 outstanding IOs
        assert config.flush_tlb_on_scan is True
        assert config.proactive is True

    def test_frozen(self):
        config = ViyojitConfig(dirty_budget_pages=100)
        with pytest.raises(Exception):
            config.dirty_budget_pages = 5


class TestValidation:
    def test_budget_positive(self):
        with pytest.raises(ValueError):
            ViyojitConfig(dirty_budget_pages=0)

    def test_epoch_positive(self):
        with pytest.raises(ValueError):
            ViyojitConfig(dirty_budget_pages=1, epoch_ns=0)

    def test_history_bounds(self):
        with pytest.raises(ValueError):
            ViyojitConfig(dirty_budget_pages=1, history_epochs=0)
        with pytest.raises(ValueError):
            ViyojitConfig(dirty_budget_pages=1, history_epochs=65)
        ViyojitConfig(dirty_budget_pages=1, history_epochs=64)

    def test_alpha_bounds(self):
        with pytest.raises(ValueError):
            ViyojitConfig(dirty_budget_pages=1, pressure_alpha=0)
        with pytest.raises(ValueError):
            ViyojitConfig(dirty_budget_pages=1, pressure_alpha=1.1)

    def test_io_cap_positive(self):
        with pytest.raises(ValueError):
            ViyojitConfig(dirty_budget_pages=1, max_outstanding_io=0)
