"""Unit tests for the pluggable victim-selection policies."""

import numpy as np
import pytest

from repro.core.config import ViyojitConfig
from repro.core.history import UpdateHistory
from repro.core.policies import (
    ClockPolicy,
    FIFOPolicy,
    LeastFrequentlyUpdatedPolicy,
    LeastRecentlyUpdatedPolicy,
    MostRecentlyUpdatedPolicy,
    POLICY_NAMES,
    RandomPolicy,
    make_policy,
)


def scanned_history(*epochs):
    """Build an UpdateHistory from per-epoch updated-page lists."""
    history = UpdateHistory(32, history_epochs=16)
    for pfns in epochs:
        history.record_scan(np.array(sorted(set(pfns)), dtype=np.int64))
    return history


class TestFactory:
    def test_all_names_buildable(self):
        history = scanned_history([1])
        for name in POLICY_NAMES:
            policy = make_policy(name, history=history)
            assert policy.name == name

    def test_history_required_for_history_policies(self):
        with pytest.raises(ValueError, match="requires an UpdateHistory"):
            make_policy("least-recently-updated")

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown victim policy"):
            make_policy("arc")

    def test_config_validates_policy_name(self):
        with pytest.raises(ValueError):
            ViyojitConfig(dirty_budget_pages=1, victim_policy="bogus")


class TestLRUPolicy:
    def test_matches_history_coldest(self):
        history = scanned_history([1], [2], [3])
        policy = LeastRecentlyUpdatedPolicy(history)
        assert policy.rank([1, 2, 3], 2) == history.coldest([1, 2, 3], 2)


class TestLFUPolicy:
    def test_least_popular_first(self):
        history = scanned_history([1, 2], [1], [1])
        policy = LeastFrequentlyUpdatedPolicy(history)
        assert policy.rank([1, 2], 1) == [2]

    def test_deterministic_ties(self):
        history = scanned_history([])
        policy = LeastFrequentlyUpdatedPolicy(history)
        assert policy.rank([5, 3, 9], 3) == [3, 5, 9]

    def test_empty(self):
        policy = LeastFrequentlyUpdatedPolicy(scanned_history())
        assert policy.rank([], 2) == []
        assert policy.rank([1], 0) == []


class TestFIFOPolicy:
    def test_dirtying_order(self):
        policy = FIFOPolicy()
        for pfn in (5, 3, 8):
            policy.note_dirtied(pfn)
        assert policy.rank([3, 5, 8], 2) == [5, 3]

    def test_cleaned_pages_leave_order(self):
        policy = FIFOPolicy()
        for pfn in (1, 2, 3):
            policy.note_dirtied(pfn)
        policy.note_cleaned(1)
        assert policy.rank([2, 3], 1) == [2]

    def test_redirty_keeps_original_position(self):
        policy = FIFOPolicy()
        policy.note_dirtied(1)
        policy.note_dirtied(2)
        policy.note_dirtied(1)  # still first
        assert policy.rank([1, 2], 1) == [1]

    def test_unseen_candidates_still_returned(self):
        policy = FIFOPolicy()
        policy.note_dirtied(1)
        assert set(policy.rank([1, 99], 2)) == {1, 99}


class TestRandomPolicy:
    def test_returns_subset(self):
        policy = RandomPolicy(seed=3)
        out = policy.rank(list(range(10)), 4)
        assert len(out) == 4
        assert set(out) <= set(range(10))

    def test_seeded_reproducibility(self):
        a = RandomPolicy(seed=7).rank(list(range(20)), 5)
        b = RandomPolicy(seed=7).rank(list(range(20)), 5)
        assert a == b


class TestMRUPolicy:
    def test_hottest_first(self):
        history = scanned_history([1], [2])
        policy = MostRecentlyUpdatedPolicy(history)
        assert policy.rank([1, 2], 1) == [2]


class TestClockPolicy:
    def test_second_chance(self):
        policy = ClockPolicy()
        policy.note_dirtied(1)
        policy.note_dirtied(2)
        # Both have the reference bit set; first sweep clears, second picks.
        out = policy.rank([1, 2], 1)
        assert out == [1]

    def test_recently_scanned_page_survives_one_sweep(self):
        policy = ClockPolicy()
        policy.note_dirtied(1)
        policy.note_dirtied(2)
        policy.rank([1, 2], 1)  # clears both bits, picks 1
        policy.note_scan(np.array([2]), epoch=1)  # 2 referenced again
        out = policy.rank([1, 2], 1)
        assert out == [1]  # 1's bit is clear; 2 got a second chance

    def test_cleaned_pages_skipped(self):
        policy = ClockPolicy()
        policy.note_dirtied(1)
        policy.note_dirtied(2)
        policy.note_cleaned(1)
        assert policy.rank([2], 1) == [2]

    def test_never_hangs_when_all_referenced(self):
        policy = ClockPolicy()
        for pfn in range(8):
            policy.note_dirtied(pfn)
        out = policy.rank(list(range(8)), 8)
        assert sorted(out) == list(range(8))


class TestPolicyComparisonUnderSkew:
    """LRU-updated must beat its adversarial inverse on a skewed stream."""

    def test_lru_keeps_hot_pages_dirty(self):
        history = UpdateHistory(16, history_epochs=16)
        # Pages 0-2 update every epoch, 3-9 updated once at epoch 0.
        history.record_scan(np.arange(10, dtype=np.int64))
        for _ in range(6):
            history.record_scan(np.array([0, 1, 2], dtype=np.int64))
        lru = LeastRecentlyUpdatedPolicy(history)
        mru = MostRecentlyUpdatedPolicy(history)
        candidates = list(range(10))
        assert set(lru.rank(candidates, 3)) <= set(range(3, 10))
        assert set(mru.rank(candidates, 3)) == {0, 1, 2}
