"""Tests for battery ballooning across tenants (section 6.3)."""

import random

import pytest

from repro.core.ballooning import BatteryBroker
from repro.core.config import ViyojitConfig
from repro.core.runtime import Viyojit
from repro.power.battery import Battery
from repro.power.power_model import PowerModel
from repro.sim.events import Simulation

PAGE = 4096


def make_broker(sim, budget_pages=64):
    model = PowerModel()
    battery = model.battery_for_dirty_bytes(budget_pages * PAGE)
    return BatteryBroker(sim, battery, model, page_size=PAGE)


def make_tenant(sim, num_pages=256):
    system = Viyojit(
        sim, num_pages=num_pages, config=ViyojitConfig(dirty_budget_pages=1)
    )
    system.start()
    return system


class TestBudgetRetuning:
    def test_set_budget_grows(self, sim):
        system = make_tenant(sim)
        system.set_dirty_budget(32)
        assert system.dirty_budget_pages == 32

    def test_set_budget_validation(self, sim):
        system = make_tenant(sim)
        with pytest.raises(ValueError):
            system.set_dirty_budget(0)
        with pytest.raises(ValueError):
            system.set_dirty_budget(10_000)

    def test_drain_to_budget_after_shrink(self, sim):
        system = make_tenant(sim)
        system.set_dirty_budget(16)
        mapping = system.mmap(32 * PAGE)
        for page in range(16):
            system.write(mapping.base_addr + page * PAGE, b"x")
        system.set_dirty_budget(4)
        system.drain_to_budget()
        assert system.dirty_count <= 4

    def test_shrunk_budget_enforced_for_new_writes(self, sim):
        system = make_tenant(sim)
        system.set_dirty_budget(16)
        mapping = system.mmap(32 * PAGE)
        system.set_dirty_budget(3)
        for page in range(10):
            system.write(mapping.base_addr + page * PAGE, b"x")
            assert system.dirty_count <= 3


@pytest.fixture
def sim():
    return Simulation()


class TestBroker:
    def test_register_applies_floor(self, sim):
        broker = make_broker(sim, budget_pages=64)
        tenant = broker.register("a", make_tenant(sim), floor_pages=8)
        assert tenant.budget_pages == 8
        assert tenant.system.dirty_budget_pages == 8

    def test_register_rejects_overcommitted_floors(self, sim):
        broker = make_broker(sim, budget_pages=16)
        broker.register("a", make_tenant(sim), floor_pages=10)
        with pytest.raises(ValueError, match="exceed battery"):
            broker.register("b", make_tenant(sim), floor_pages=10)

    def test_duplicate_name_rejected(self, sim):
        broker = make_broker(sim)
        broker.register("a", make_tenant(sim))
        with pytest.raises(ValueError, match="already registered"):
            broker.register("a", make_tenant(sim))

    def test_rebalance_respects_total(self, sim):
        broker = make_broker(sim, budget_pages=64)
        for name in ("a", "b", "c"):
            broker.register(name, make_tenant(sim), floor_pages=4)
        report = broker.rebalance()
        assert sum(report.budgets.values()) <= broker.total_budget_pages
        assert broker.allocated_pages() <= broker.total_budget_pages

    def test_rebalance_follows_demand(self, sim):
        broker = make_broker(sim, budget_pages=64)
        busy = make_tenant(sim)
        idle = make_tenant(sim)
        broker.register("busy", busy, floor_pages=4)
        broker.register("idle", idle, floor_pages=4)
        broker.rebalance()  # initial split

        mapping = busy.mmap(64 * PAGE)
        rng = random.Random(1)
        for _ in range(600):
            page = rng.randrange(64)
            busy.write(mapping.base_addr + page * PAGE, b"busy!")
        report = broker.rebalance()
        assert report.budgets["busy"] > report.budgets["idle"]
        assert report.demands["busy"] > report.demands["idle"]

    def test_floor_is_guaranteed(self, sim):
        broker = make_broker(sim, budget_pages=64)
        busy = make_tenant(sim)
        idle = make_tenant(sim)
        broker.register("busy", busy, floor_pages=4)
        broker.register("idle", idle, floor_pages=12)
        mapping = busy.mmap(64 * PAGE)
        for page in range(40):
            busy.write(mapping.base_addr + page * PAGE, b"load")
        report = broker.rebalance()
        assert report.budgets["idle"] >= 12

    def test_shared_battery_always_survives(self, sim):
        broker = make_broker(sim, budget_pages=48)
        tenants = []
        for name in ("a", "b"):
            tenant = make_tenant(sim)
            broker.register(name, tenant, floor_pages=8)
            tenants.append(tenant)
        broker.rebalance()
        mappings = [tenant.mmap(64 * PAGE) for tenant in tenants]
        rng = random.Random(2)
        for step in range(800):
            which = rng.randrange(2)
            page = rng.randrange(64)
            tenants[which].write(
                mappings[which].base_addr + page * PAGE, b"w" * 16
            )
            if step % 100 == 99:
                broker.rebalance()
            assert broker.survives_power_failure(), f"unsafe at step {step}"

    def test_degraded_battery_rebalances_down(self, sim):
        broker = make_broker(sim, budget_pages=64)
        a = make_tenant(sim)
        b = make_tenant(sim)
        broker.register("a", a, floor_pages=24)
        broker.register("b", b, floor_pages=24)
        broker.rebalance()
        before = broker.allocated_pages()
        broker.battery.degrade(0.5)
        report = broker.on_battery_degraded()
        assert broker.allocated_pages() <= broker.total_budget_pages
        assert broker.allocated_pages() < before
        assert all(budget >= 1 for budget in report.budgets.values())
        assert broker.survives_power_failure()
