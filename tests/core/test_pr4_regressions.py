"""Regression tests for the allocator, ranking, and threshold bugfixes.

Each class pins one fixed bug so it cannot silently return:

- allocator fragmentation: freed extents must coalesce (with each other
  and with the allocation frontier) so mmap/munmap cycles never
  fragment the region into permanent unusability;
- victim-ranking staleness: updates older than the history window must
  rank as never-observed, and the victim queue must never yield pages
  that were cleaned or went in-flight after the queue was built;
- proactive threshold rounding: the trigger must round pressure *up*
  and stay monotone at half-integer pressures.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.history import UpdateHistory
from repro.core.pressure import PressureEstimator
from repro.core.runtime import OutOfNVDRAM
from tests.conftest import make_viyojit

PAGE = 4096


class TestAllocatorCoalescing:
    def test_full_region_survives_mmap_munmap_cycles(self, sim):
        system = make_viyojit(sim, num_pages=256)
        total = 256 * PAGE
        for _ in range(3):
            a = system.mmap(64 * PAGE)
            b = system.mmap(64 * PAGE)
            c = system.mmap(128 * PAGE)
            # Free out of order: middle, first, last.
            system.munmap(b)
            system.munmap(a)
            system.munmap(c)
            whole = system.mmap(total)
            system.munmap(whole)

    def test_checkerboard_free_coalesces(self, sim):
        system = make_viyojit(sim, num_pages=256)
        mappings = [system.mmap(32 * PAGE) for _ in range(8)]
        for mapping in mappings[1::2]:
            system.munmap(mapping)
        for mapping in mappings[0::2]:
            system.munmap(mapping)
        # Every hole merged back: one full-region allocation must fit.
        system.mmap(256 * PAGE)

    def test_interior_neighbors_merge_both_ways(self, sim):
        system = make_viyojit(sim, num_pages=256)
        a = system.mmap(32 * PAGE)
        b = system.mmap(32 * PAGE)
        c = system.mmap(32 * PAGE)
        tail = system.mmap(160 * PAGE)
        system.munmap(a)
        system.munmap(c)
        system.munmap(b)  # bridges a..c into one 96-page extent
        d = system.mmap(96 * PAGE)
        assert d.base_page == a.base_page
        system.munmap(tail)
        system.munmap(d)

    def test_out_of_space_reports_largest_extent(self, sim):
        system = make_viyojit(sim, num_pages=256)
        first = system.mmap(128 * PAGE)
        system.mmap(96 * PAGE)
        system.munmap(first)  # 128 free + 32 tail, not contiguous
        with pytest.raises(OutOfNVDRAM, match=r"largest\s+free extent is 128 pages"):
            system.mmap(200 * PAGE)


class TestOutOfWindowRanking:
    def test_aged_out_update_ranks_as_never_observed(self):
        history = UpdateHistory(5, history_epochs=4)
        history.record_scan(np.array([0], dtype=np.int64))  # epoch 0
        for pfn in (1, 2, 3, 1):  # epochs 1..4 push epoch 0 out
            history.record_scan(np.array([pfn], dtype=np.int64))
        # Page 0's update aged out; page 4 was never updated.  Both are
        # never-observed now, so the tie breaks by page number — the
        # pre-fix ranking put 4 strictly before 0.
        assert history.coldest(range(5), 5) == [0, 4, 2, 3, 1]

    def test_in_window_update_still_ranks_by_recency(self):
        history = UpdateHistory(4, history_epochs=8)
        history.record_scan(np.array([0], dtype=np.int64))
        history.record_scan(np.array([1], dtype=np.int64))
        assert history.coldest(range(4), 4) == [2, 3, 0, 1]

    def test_update_count_zero_after_window_slides(self):
        history = UpdateHistory(3, history_epochs=2)
        history.record_scan(np.array([0], dtype=np.int64))
        history.record_scan(np.array([1], dtype=np.int64))
        history.record_scan(np.array([1], dtype=np.int64))
        assert history.update_count(0) == 0
        assert history.update_count(1) == 2


class TestThresholdRounding:
    def test_half_integer_pressure_rounds_up(self):
        estimator = PressureEstimator(alpha=0.5)
        estimator.observe(5)
        assert estimator.pressure == 2.5
        # ceil(2.5) = 3 headroom pages; int(round(2.5)) == 2 was the bug.
        assert estimator.threshold(10) == 7

    def test_threshold_monotone_in_pressure(self):
        thresholds = []
        for observation in range(0, 13):
            estimator = PressureEstimator(alpha=0.5)
            estimator.observe(observation)  # pressure = observation / 2
            thresholds.append(estimator.threshold(10))
        assert thresholds == sorted(thresholds, reverse=True)

    def test_fractional_pressure_reserves_whole_page(self):
        estimator = PressureEstimator(alpha=0.25)
        estimator.observe(1)  # pressure 0.25
        assert estimator.threshold(8) == 7


class TestVictimQueueStaleness:
    def _dirty_pages(self, system, mapping, count):
        for index in range(count):
            system.write(mapping.base_addr + index * PAGE, b"d" * 8)

    def test_cleaned_page_never_reissued(self, sim):
        system = make_viyojit(sim, num_pages=128, budget=16, proactive=False)
        mapping = system.mmap(32 * PAGE)
        self._dirty_pages(system, mapping, 8)
        system._rebuild_victim_queue()
        queued = list(system._victim_queue)
        assert queued, "expected dirty pages in the victim queue"
        # A flush completes between epochs: the page leaves the tracker
        # while still sitting in the stale queue.
        cleaned = queued[0]
        system.tracker.remove(cleaned)
        victim = system._next_victim()
        assert victim is not None
        assert victim != cleaned
        assert victim in system.tracker

    def test_inflight_page_skipped(self, sim):
        system = make_viyojit(sim, num_pages=128, budget=16, proactive=False)
        mapping = system.mmap(32 * PAGE)
        self._dirty_pages(system, mapping, 8)
        system._rebuild_victim_queue()
        target = list(system._victim_queue)[0]
        system.flusher.issue(target)
        victim = system._next_victim()
        assert victim is not None
        assert victim != target
        assert not system.flusher.is_inflight(victim)

    def test_rebuild_excludes_inflight_pages(self, sim):
        system = make_viyojit(sim, num_pages=128, budget=16, proactive=False)
        mapping = system.mmap(32 * PAGE)
        self._dirty_pages(system, mapping, 8)
        system._rebuild_victim_queue()
        target = list(system._victim_queue)[0]
        system.flusher.issue(target)
        system._rebuild_victim_queue()
        assert target not in system._victim_queue

    def test_queue_drained_empty_returns_none_when_all_clean(self, sim):
        system = make_viyojit(sim, num_pages=128, budget=16, proactive=False)
        mapping = system.mmap(32 * PAGE)
        self._dirty_pages(system, mapping, 4)
        for pfn in list(system.tracker):
            system.tracker.remove(pfn)
        system._rebuild_victim_queue()
        assert system._next_victim() is None
