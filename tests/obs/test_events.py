"""Event vocabulary: dict round-trips and the type registry."""

from __future__ import annotations

import pytest

from repro.obs.events import (
    EVENT_TYPES,
    EVENT_TYPES_BY_NAME,
    BudgetWait,
    EpochScan,
    SSDWrite,
    SyncEviction,
    TLBFlush,
    WriteFault,
    event_from_dict,
)


class TestEventDicts:
    def test_as_dict_includes_type_discriminator(self):
        event = WriteFault(t=123, pfn=4)
        assert event.as_dict() == {"type": "WriteFault", "t": 123, "pfn": 4}

    def test_every_type_round_trips(self):
        samples = [
            WriteFault(t=1, pfn=2),
            SyncEviction(t=3, pfn=4, dirty=8),
            EpochScan(
                t=5, epoch=1, updated=3, new_dirty=2, dirty=6,
                pressure=1.5, threshold=10,
            ),
            TLBFlush(t=7, entries=12),
            SSDWrite(t=9, size_bytes=4096, queued_ns=0, completion_ns=100),
            BudgetWait(t=11, wait_ns=50),
        ]
        for event in samples:
            assert event_from_dict(event.as_dict()) == event

    def test_registry_covers_all_types(self):
        assert set(EVENT_TYPES_BY_NAME) == {cls.__name__ for cls in EVENT_TYPES}
        # The paper-facing vocabulary the issue names must all exist.
        for name in (
            "WriteFault", "SyncEviction", "ProactiveFlush", "EpochScan",
            "TLBFlush", "SSDWrite", "BudgetWait",
        ):
            assert name in EVENT_TYPES_BY_NAME

    def test_unknown_type_rejected(self):
        with pytest.raises(ValueError, match="unknown event type"):
            event_from_dict({"type": "Nope", "t": 0})

    def test_events_are_immutable(self):
        event = WriteFault(t=1, pfn=2)
        with pytest.raises(AttributeError):
            event.pfn = 3  # type: ignore[misc]
