"""Event emission matches the runtime's own counters, site by site.

Every instrumented hot path is cross-checked against the cumulative
counter it mirrors — the tracer must agree with ``ViyojitStats`` and the
device counters exactly, or a future refactor moved an emission without
moving its stat (or vice versa).
"""

from __future__ import annotations

import pytest

from repro.core.config import ViyojitConfig
from repro.core.runtime import FullBatteryNVDRAM, HardwareViyojit, Viyojit
from repro.obs.events import (
    BudgetWait,
    EpochScan,
    FlushComplete,
    ProactiveFlush,
    SSDWrite,
    SyncEviction,
    TLBFlush,
    WriteFault,
)
from repro.obs.tracer import NULL_TRACER, RecordingTracer
from repro.sim.events import Simulation
from repro.workloads.distributions import ZipfianGenerator

PAGE = 4096


def drive(system_cls, tracer, *, pages=128, budget=8, hot=48, ops=300, seed=11):
    sim = Simulation()
    if system_cls is FullBatteryNVDRAM:
        system = system_cls(sim, num_pages=pages, tracer=tracer)
    else:
        system = system_cls(
            sim,
            num_pages=pages,
            config=ViyojitConfig(dirty_budget_pages=budget),
            tracer=tracer,
        )
    system.start()
    mapping = system.mmap(hot * PAGE)
    zipf = ZipfianGenerator(hot, seed=seed)
    for op in range(ops):
        page = zipf.next()
        system.write(mapping.addr(page * PAGE), b"x" * 64)
    return sim, system


class TestViyojitEmission:
    @pytest.fixture()
    def traced(self):
        tracer = RecordingTracer()
        sim, system = drive(Viyojit, tracer)
        return tracer, sim, system

    def test_event_counts_mirror_stats(self, traced):
        tracer, _sim, system = traced
        stats = system.stats
        counts = tracer.counts()
        assert counts.get("WriteFault", 0) == stats.write_faults
        assert counts.get("SyncEviction", 0) == stats.sync_evictions
        assert counts.get("ProactiveFlush", 0) == stats.proactive_flushes
        assert counts.get("FlushComplete", 0) == stats.flush_completions
        assert counts.get("EpochScan", 0) == stats.epochs
        assert counts.get("BudgetWait", 0) == stats.budget_waits
        assert stats.write_faults > 0  # the workload actually faulted

    def test_ssd_writes_all_traced(self, traced):
        tracer, _sim, system = traced
        ssd_events = tracer.events_of(SSDWrite)
        assert len(ssd_events) == system.ssd.stats.writes
        assert sum(e.size_bytes for e in ssd_events) == system.ssd.stats.bytes_written
        for event in ssd_events:
            assert event.completion_ns >= event.t + event.queued_ns

    def test_tlb_flushes_traced(self, traced):
        tracer, _sim, system = traced
        # One flush at start() + one per epoch scan.
        assert len(tracer.events_of(TLBFlush)) == system.tlb.flushes
        assert system.tlb.flushes == system.stats.epochs + 1

    def test_epoch_scan_fields(self, traced):
        tracer, _sim, system = traced
        scans = tracer.events_of(EpochScan)
        assert [s.epoch for s in scans] == list(range(1, len(scans) + 1))
        for scan in scans:
            assert 0 <= scan.dirty <= system.dirty_budget_pages
            assert scan.threshold <= system.dirty_budget_pages
            assert scan.pressure >= 0.0

    def test_timeline_matches_epoch_events(self, traced):
        tracer, _sim, system = traced
        scans = tracer.events_of(EpochScan)
        points = tracer.metrics.timeline.points()
        assert [(p.epoch, p.t, p.dirty, p.pressure, p.threshold) for p in points] == [
            (s.epoch, s.t, s.dirty, s.pressure, s.threshold) for s in scans
        ]

    def test_latency_histograms_populated(self, traced):
        tracer, _sim, system = traced
        metrics = tracer.metrics
        assert metrics.histogram("fault_handler_ns").count == system.stats.write_faults
        assert (
            metrics.histogram("flush_latency_ns").count
            == system.stats.flush_completions
        )
        # Every fault pays at least the trap cost.
        assert metrics.histogram("fault_handler_ns").min >= system.machine.trap_cost_ns

    def test_flush_latency_is_issue_to_completion(self, traced):
        tracer, _sim, _system = traced
        for event in tracer.events_of(FlushComplete):
            assert event.latency_ns > 0
            assert event.t >= event.latency_ns  # completion at/after issue


class TestHardwareEmission:
    def test_hardware_mode_traces_without_first_write_faults(self):
        tracer = RecordingTracer()
        _sim, system = drive(HardwareViyojit, tracer)
        counts = tracer.counts()
        # Dirty tracking never traps; only mid-flush stores fault.
        assert counts.get("WriteFault", 0) == system.stats.write_faults
        assert counts.get("SyncEviction", 0) == system.stats.sync_evictions
        assert system.stats.pages_dirtied > system.stats.write_faults


class TestBaselineEmission:
    def test_baseline_emits_no_viyojit_events(self):
        tracer = RecordingTracer()
        _sim, _system = drive(FullBatteryNVDRAM, tracer)
        # No protection, no tracking, no flushing: any event here means
        # the baseline grew Viyojit machinery by accident.
        assert tracer.events == []


class TestDefaultTracer:
    def test_components_share_the_null_tracer_by_default(self):
        sim = Simulation()
        system = Viyojit(
            sim, num_pages=64, config=ViyojitConfig(dirty_budget_pages=8)
        )
        assert system.tracer is NULL_TRACER
        assert system.mmu.tracer is NULL_TRACER
        assert system.tlb.tracer is NULL_TRACER
        assert system.ssd.tracer is NULL_TRACER
        assert system.flusher.tracer is NULL_TRACER
