"""Metrics registry: counters, gauges, histograms, timeline decimation."""

from __future__ import annotations

import pytest

from repro.obs.metrics import (
    DEFAULT_TIME_BUCKETS_NS,
    Counter,
    EpochPoint,
    EpochTimeline,
    Gauge,
    Histogram,
    MetricsRegistry,
)


def point(epoch: int) -> EpochPoint:
    return EpochPoint(
        epoch=epoch, t=epoch * 1000, dirty=epoch, new_dirty=1,
        pressure=0.5, threshold=10, outstanding=0,
    )


class TestCounterGauge:
    def test_counter_accumulates(self):
        c = Counter("faults")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("x").inc(-1)

    def test_gauge_keeps_last_value(self):
        g = Gauge("dirty")
        g.set(3)
        g.set(1.5)
        assert g.value == 1.5


class TestHistogram:
    def test_bucketing_on_inclusive_upper_edges(self):
        h = Histogram("lat", bounds=(10, 100, 1000))
        for v in (5, 10, 11, 100, 5000):
            h.observe(v)
        assert h.bucket_counts == [2, 2, 0, 1]
        assert h.count == 5
        assert h.total == 5126
        assert h.min == 5
        assert h.max == 5000

    def test_percentile_returns_bucket_edges(self):
        h = Histogram("lat", bounds=(10, 100, 1000))
        for _ in range(99):
            h.observe(7)
        h.observe(999)
        assert h.percentile(0.50) == 10
        assert h.percentile(0.99) == 10
        assert h.percentile(1.0) == 1000

    def test_percentile_of_empty_is_none(self):
        assert Histogram("lat").percentile(0.5) is None

    def test_overflow_percentile_reports_exact_max(self):
        h = Histogram("lat", bounds=(10,))
        h.observe(12345)
        assert h.percentile(0.99) == 12345

    def test_rejects_unsorted_bounds_and_negative_values(self):
        with pytest.raises(ValueError):
            Histogram("bad", bounds=(10, 10))
        with pytest.raises(ValueError):
            Histogram("lat").observe(-1)

    def test_mean(self):
        h = Histogram("lat")
        assert h.mean == 0.0
        h.observe(10)
        h.observe(20)
        assert h.mean == 15.0

    def test_snapshot_shape(self):
        h = Histogram("lat", bounds=(10, 100))
        h.observe(50)
        snap = h.snapshot()
        assert snap["bounds_ns"] == [10, 100]
        assert snap["buckets"] == [0, 1, 0]
        assert snap["count"] == 1
        assert snap["p50"] == 100


class TestEpochTimeline:
    def test_records_every_point_under_cap(self):
        tl = EpochTimeline(max_points=100)
        for i in range(50):
            tl.record(point(i))
        assert len(tl) == 50
        assert [p.epoch for p in tl.points()] == list(range(50))

    def test_decimation_bounds_memory_and_doubles_stride(self):
        tl = EpochTimeline(max_points=16)
        for i in range(1000):
            tl.record(point(i))
        assert len(tl) < 16
        assert tl.stride > 1
        epochs = [p.epoch for p in tl.points()]
        # Retained points stay sorted and evenly strided after decimation.
        assert epochs == sorted(epochs)
        gaps = {b - a for a, b in zip(epochs, epochs[1:])}
        assert len(gaps) == 1  # uniform spacing

    def test_decimation_is_deterministic(self):
        def run():
            tl = EpochTimeline(max_points=8)
            for i in range(300):
                tl.record(point(i))
            return [p.epoch for p in tl.points()]

        assert run() == run()

    def test_rejects_tiny_cap(self):
        with pytest.raises(ValueError):
            EpochTimeline(max_points=1)


class TestMetricsRegistry:
    def test_get_or_create_semantics(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("g") is registry.gauge("g")
        assert registry.histogram("h") is registry.histogram("h")

    def test_histogram_bounds_conflict_raises(self):
        registry = MetricsRegistry()
        registry.histogram("h", bounds=(1, 2))
        with pytest.raises(ValueError, match="already registered"):
            registry.histogram("h", bounds=(1, 2, 3))

    def test_snapshot_is_name_sorted_and_complete(self):
        registry = MetricsRegistry()
        registry.counter("zeta").inc(2)
        registry.counter("alpha").inc()
        registry.gauge("dirty").set(7)
        registry.histogram("lat", bounds=(10,)).observe(5)
        registry.timeline.record(point(0))
        snap = registry.snapshot()
        assert list(snap["counters"]) == ["alpha", "zeta"]
        assert snap["counters"] == {"alpha": 1, "zeta": 2}
        assert snap["gauges"] == {"dirty": 7}
        assert snap["histograms"]["lat"]["count"] == 1
        assert snap["timeline"][0]["epoch"] == 0

    def test_default_bounds_are_strictly_increasing(self):
        assert list(DEFAULT_TIME_BUCKETS_NS) == sorted(set(DEFAULT_TIME_BUCKETS_NS))
