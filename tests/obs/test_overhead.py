"""Tracing must be free when off and invisible when on.

The instrumentation sits on the hottest paths in the simulator (fault
handler, flusher, MMU, TLB, SSD), so two things must hold:

* with the default no-op tracer, behaviour is bit-identical to the
  uninstrumented seed — same counters, same virtual end time;
* turning recording ON only *observes* — it must not perturb the
  simulation (no clock charges, no extra events, no counter drift).
"""

from __future__ import annotations

import pytest

from repro.core.config import ViyojitConfig
from repro.core.runtime import HardwareViyojit, Viyojit
from repro.obs.tracer import NULL_TRACER, RecordingTracer
from repro.sim.events import Simulation
from repro.workloads.distributions import ZipfianGenerator

PAGE = 4096


def drive(system_cls, tracer):
    sim = Simulation()
    system = system_cls(
        sim,
        num_pages=128,
        config=ViyojitConfig(dirty_budget_pages=8),
        tracer=tracer,
    )
    system.start()
    mapping = system.mmap(48 * PAGE)
    zipf = ZipfianGenerator(48, seed=11)
    for op in range(300):
        page = zipf.next()
        system.write(mapping.addr(page * PAGE), f"op{op:06d}".encode() * 8)
    system.drain()
    return sim, system


def observable_state(sim, system):
    return {
        "summary": system.stats.summary(),
        "dirty_samples": list(system.stats.dirty_page_samples),
        "now_ns": sim.now,
        "mmu": (
            system.mmu.read_accesses,
            system.mmu.write_accesses,
            system.mmu.faults,
        ),
        "tlb": (
            system.tlb.hits,
            system.tlb.misses,
            system.tlb.flushes,
            system.tlb.single_invalidations,
        ),
        "ssd": (system.ssd.stats.writes, system.ssd.stats.bytes_written),
    }


@pytest.mark.parametrize("system_cls", [Viyojit, HardwareViyojit])
def test_recording_tracer_causes_no_counter_drift(system_cls):
    null_state = observable_state(*drive(system_cls, None))
    traced_state = observable_state(*drive(system_cls, RecordingTracer()))
    assert traced_state == null_state


def test_default_tracer_is_the_shared_noop():
    sim, system = drive(Viyojit, None)
    assert system.tracer is NULL_TRACER
    assert not system.tracer.enabled
    del sim


def test_traced_run_actually_recorded_something():
    tracer = RecordingTracer()
    drive(Viyojit, tracer)
    assert len(tracer.events) > 0
    assert tracer.dropped == 0
    assert tracer.metrics.histogram("fault_handler_ns").count > 0
