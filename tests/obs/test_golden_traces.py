"""Golden-trace regression suite: seeded runs must match the fixtures.

Byte-for-byte.  A mismatch means the fault-handler flow, the flusher
trigger logic, the cost model, or the event vocabulary changed — if the
change is intentional, regenerate with ``tests/obs/regen_golden.py`` and
commit the diff; if not, you just caught a behaviour regression that no
coarse cumulative counter would have shown.
"""

from __future__ import annotations

import json

import pytest

from tests.obs.regen_golden import GOLDEN_SPECS, fixture_path, render

VARIANTS = sorted(GOLDEN_SPECS)


@pytest.mark.parametrize("name", VARIANTS)
def test_trace_matches_golden_fixture(name):
    path = fixture_path(name)
    assert path.exists(), (
        f"missing fixture {path}; generate it with "
        "`PYTHONPATH=src python tests/obs/regen_golden.py`"
    )
    expected = path.read_text(encoding="utf-8")
    actual = render(name)
    assert actual == expected, (
        f"{name} trace diverged from its golden fixture — if intentional, "
        "regenerate via tests/obs/regen_golden.py and commit the diff"
    )


@pytest.mark.parametrize("name", VARIANTS)
def test_trace_is_deterministic(name):
    # Two fresh runs of the same seed: identical bytes, no fixture needed.
    assert render(name) == render(name)


def test_viyojit_fixture_sanity():
    """The committed viyojit fixture really exercises the machinery."""
    doc = json.loads(fixture_path("viyojit").read_text(encoding="utf-8"))
    types = {e["type"] for e in doc["events"]}
    assert {"WriteFault", "SSDWrite", "FlushComplete", "TLBFlush"} <= types
    assert doc["stats"]["write_faults"] > 0
    assert doc["stats"]["peak_dirty_pages"] <= 8
    assert doc["dropped_events"] == 0
    budget = doc["meta"]["workload"]["dirty_budget_pages"]
    for event in doc["events"]:
        if event["type"] in ("SyncEviction", "EpochScan"):
            assert event["dirty"] <= budget


def test_baseline_fixture_has_no_events():
    doc = json.loads(fixture_path("nvdram").read_text(encoding="utf-8"))
    assert doc["events"] == []
    assert doc["stats"] is None
    assert doc["substrate"]["mmu"]["faults"] == 0
