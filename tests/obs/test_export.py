"""Exporters: canonical JSON, flat CSV, and row round-trips."""

from __future__ import annotations

from repro.obs.events import SSDWrite, TLBFlush, WriteFault
from repro.obs.export import (
    EVENT_CSV_COLUMNS,
    events_to_csv,
    events_to_rows,
    rows_to_events,
    timeline_to_csv,
    to_json,
)
from repro.obs.metrics import EpochPoint

EVENTS = [
    WriteFault(t=10, pfn=3),
    SSDWrite(t=20, size_bytes=4096, queued_ns=5, completion_ns=120),
    TLBFlush(t=30, entries=2),
]


class TestRows:
    def test_rows_carry_sequence_numbers(self):
        rows = events_to_rows(EVENTS)
        assert [r["seq"] for r in rows] == [0, 1, 2]
        assert rows[1]["type"] == "SSDWrite"
        assert rows[1]["completion_ns"] == 120

    def test_round_trip(self):
        assert rows_to_events(events_to_rows(EVENTS)) == EVENTS


class TestJson:
    def test_canonical_form(self):
        text = to_json({"b": 1, "a": [2, 3]})
        assert text == '{\n  "a": [\n    2,\n    3\n  ],\n  "b": 1\n}\n'

    def test_same_payload_same_bytes(self):
        rows = events_to_rows(EVENTS)
        assert to_json(rows) == to_json(events_to_rows(list(EVENTS)))


class TestCsv:
    def test_header_covers_every_event_field(self):
        text = events_to_csv(EVENTS)
        lines = text.splitlines()
        assert lines[0] == ",".join(EVENT_CSV_COLUMNS)
        assert len(lines) == 1 + len(EVENTS)
        # Fields foreign to a row's type are empty cells, not errors.
        fault_row = dict(zip(EVENT_CSV_COLUMNS, lines[1].split(",")))
        assert fault_row["type"] == "WriteFault"
        assert fault_row["pfn"] == "3"
        assert fault_row["size_bytes"] == ""

    def test_timeline_csv(self):
        text = timeline_to_csv(
            [
                EpochPoint(
                    epoch=1, t=1000, dirty=5, new_dirty=2,
                    pressure=1.5, threshold=11, outstanding=3,
                )
            ]
        )
        assert text.splitlines() == [
            "epoch,t,dirty,new_dirty,pressure,threshold,outstanding",
            "1,1000,5,2,1.5,11,3",
        ]
