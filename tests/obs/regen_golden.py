#!/usr/bin/env python
"""Regenerate the golden-trace fixtures under ``tests/obs/golden/``.

The golden suite (``test_golden_traces.py``) asserts byte-for-byte
equality between a fresh seeded run and these committed fixtures, so the
traces act as regression oracles over the whole fault-handler / flusher /
epoch-scan flow.  After an *intentional* behaviour change, re-run::

    PYTHONPATH=src python tests/obs/regen_golden.py

review the diff (it IS the behaviour change, event by event), and commit
the updated fixtures alongside the code.
"""

from __future__ import annotations

import pathlib
import sys

from repro.obs.export import to_json
from repro.obs.harness import TraceWorkload, run_traced_workload

GOLDEN_DIR = pathlib.Path(__file__).resolve().parent / "golden"

#: The pinned scenarios: one small zipfian workload per runtime variant.
#: Keep these tiny — the fixtures are committed — and NEVER edit the
#: parameters without regenerating every fixture.
GOLDEN_SPECS = {
    "viyojit": TraceWorkload(
        system="viyojit", num_pages=96, dirty_budget_pages=8,
        hot_pages=32, ops=120, seed=42,
    ),
    "nvdram": TraceWorkload(
        system="nvdram", num_pages=96, dirty_budget_pages=8,
        hot_pages=32, ops=120, seed=42,
    ),
    "hardware": TraceWorkload(
        system="hardware", num_pages=96, dirty_budget_pages=8,
        hot_pages=32, ops=120, seed=42,
    ),
}


def fixture_path(name: str) -> pathlib.Path:
    return GOLDEN_DIR / f"trace_{name}.json"


def render(name: str) -> str:
    return to_json(run_traced_workload(GOLDEN_SPECS[name]))


def main() -> int:
    GOLDEN_DIR.mkdir(exist_ok=True)
    for name in GOLDEN_SPECS:
        text = render(name)
        path = fixture_path(name)
        path.write_text(text, encoding="utf-8")
        print(f"wrote {path} ({len(text)} bytes)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
