"""Batched trace replay is byte-identical to the per-op replay.

The golden-trace fixtures pin the per-op event stream; this module pins
that routing the same workload through ``NVDRAMSystem.run_ops`` changes
nothing observable — not the event log, not the metrics snapshot, not
the substrate counters.
"""

from __future__ import annotations

import json

import pytest

from repro.obs.harness import (
    SYSTEM_KINDS,
    TraceWorkload,
    iter_op_batches,
    iter_workload_ops,
    run_traced_workload,
)

PAGE_SIZE = 4096


@pytest.mark.parametrize("batch_size", [1, 3, 64, 1_000])
def test_op_batches_flatten_to_workload_ops(batch_size):
    spec = TraceWorkload()
    expected = list(iter_workload_ops(spec, PAGE_SIZE))
    actual = []
    for batch in iter_op_batches(spec, PAGE_SIZE, batch_size=batch_size):
        actual.extend(batch.workload_ops())
    assert actual == expected


@pytest.mark.parametrize("system", SYSTEM_KINDS)
def test_batched_trace_dump_is_byte_identical(system):
    spec = TraceWorkload(system=system)
    per_op = run_traced_workload(spec, batched=False)
    batched = run_traced_workload(spec, batched=True)
    assert json.dumps(per_op, sort_keys=True) == json.dumps(
        batched, sort_keys=True
    )


def test_batch_size_validated():
    with pytest.raises(ValueError, match="batch_size"):
        next(iter_op_batches(TraceWorkload(), PAGE_SIZE, batch_size=0))
