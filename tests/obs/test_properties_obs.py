"""Property-based invariants, observed through the trace.

Hypothesis drives arbitrary page-write sequences against small regions
and checks the paper's core guarantees *as seen by the tracer*:

1. the dirty count never exceeds the budget — at every step and in every
   emitted event;
2. a synchronous eviction only ever happens inside a fault handler at a
   full budget (every ``SyncEviction`` is preceded by a ``WriteFault``
   and carries ``dirty == budget``);
3. cleaned (flushed) pages remain readable with their latest contents.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import ViyojitConfig
from repro.core.runtime import HardwareViyojit, Viyojit
from repro.obs.events import EpochScan, FlushComplete, SyncEviction, WriteFault
from repro.obs.tracer import RecordingTracer
from repro.sim.events import Simulation

PAGE = 4096
REGION_PAGES = 48

page_sequences = st.lists(
    st.integers(min_value=0, max_value=REGION_PAGES - 1),
    min_size=1,
    max_size=70,
)
budgets = st.integers(min_value=2, max_value=12)
system_classes = st.sampled_from([Viyojit, HardwareViyojit])


def build(system_cls, budget):
    tracer = RecordingTracer()
    sim = Simulation()
    system = system_cls(
        sim,
        num_pages=REGION_PAGES,
        config=ViyojitConfig(dirty_budget_pages=budget),
        tracer=tracer,
    )
    system.start()
    mapping = system.mmap(REGION_PAGES * PAGE)
    return tracer, sim, system, mapping


def payload(step: int, page: int) -> bytes:
    return f"s{step:04d}p{page:03d}".encode() * 4


@settings(deadline=None, max_examples=40)
@given(pages=page_sequences, budget=budgets, system_cls=system_classes)
def test_dirty_count_never_exceeds_budget(pages, budget, system_cls):
    tracer, _sim, system, mapping = build(system_cls, budget)
    for step, page in enumerate(pages):
        system.write(mapping.addr(page * PAGE), payload(step, page))
        assert system.tracker.count <= budget
    # The trace agrees: no event ever observed an over-budget dirty set.
    for event in tracer.events:
        if isinstance(event, (SyncEviction, EpochScan)):
            assert event.dirty <= budget


@settings(deadline=None, max_examples=40)
@given(pages=page_sequences, budget=budgets)
def test_sync_eviction_implies_fault_at_full_budget(pages, budget):
    tracer, _sim, system, mapping = build(Viyojit, budget)
    for step, page in enumerate(pages):
        system.write(mapping.addr(page * PAGE), payload(step, page))
    last_fault_t = None
    for event in tracer.events:
        if isinstance(event, WriteFault):
            last_fault_t = event.t
        elif isinstance(event, SyncEviction):
            # Evictions happen only inside a fault handler, so a fault
            # must precede them in the log and in virtual time...
            assert last_fault_t is not None
            assert event.t >= last_fault_t
            # ...and only when the budget was completely full (the
            # victim stays dirty until its IO lands, so the count at
            # issue time IS the budget).
            assert event.dirty == budget


@settings(deadline=None, max_examples=30)
@given(pages=page_sequences, budget=budgets, system_cls=system_classes)
def test_cleaned_pages_remain_readable(pages, budget, system_cls):
    tracer, _sim, system, mapping = build(system_cls, budget)
    latest = {}
    for step, page in enumerate(pages):
        data = payload(step, page)
        system.write(mapping.addr(page * PAGE), data)
        latest[page] = data
    system.drain()
    assert system.tracker.count == 0
    # Flushing cleaned these pages, but they still live in NV-DRAM: every
    # page — cleaned or not — must read back its latest contents.
    cleaned = {e.pfn for e in tracer.events_of(FlushComplete)}
    assert cleaned  # drain() guarantees at least one flush for nonempty runs
    for page, data in latest.items():
        assert system.read(mapping.addr(page * PAGE), len(data)) == data
