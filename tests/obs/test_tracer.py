"""Tracer behaviour: the no-op default and the recording variant."""

from __future__ import annotations

from repro.obs.events import TLBFlush, WriteFault
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NULL_TRACER, RecordingTracer, Tracer
from repro.sim.clock import SimClock


class TestNullTracer:
    def test_disabled_and_discards(self):
        assert NULL_TRACER.enabled is False
        NULL_TRACER.emit(WriteFault(t=0, pfn=1))  # no-op, no error
        assert NULL_TRACER.now() == 0

    def test_bind_clock_is_accepted_and_ignored(self):
        tracer = Tracer()
        tracer.bind_clock(SimClock(123))
        assert tracer.now() == 0


class TestRecordingTracer:
    def test_records_in_emission_order(self):
        tracer = RecordingTracer()
        tracer.emit(WriteFault(t=0, pfn=1))
        tracer.emit(TLBFlush(t=5, entries=3))
        tracer.emit(WriteFault(t=9, pfn=2))
        assert [e.type_name for e in tracer.events] == [
            "WriteFault", "TLBFlush", "WriteFault",
        ]
        assert tracer.counts() == {"TLBFlush": 1, "WriteFault": 2}
        assert [e.pfn for e in tracer.events_of(WriteFault)] == [1, 2]

    def test_now_follows_bound_clock(self):
        clock = SimClock(0)
        tracer = RecordingTracer(clock=clock)
        clock.advance(42)
        assert tracer.now() == 42

    def test_bind_clock_keeps_first_binding(self):
        first, second = SimClock(1), SimClock(2)
        tracer = RecordingTracer()
        tracer.bind_clock(first)
        tracer.bind_clock(second)
        assert tracer.clock is first

    def test_event_cap_counts_drops(self):
        tracer = RecordingTracer(max_events=2)
        for i in range(5):
            tracer.emit(WriteFault(t=i, pfn=i))
        assert len(tracer.events) == 2
        assert tracer.dropped == 3

    def test_clear_keeps_metrics(self):
        registry = MetricsRegistry()
        tracer = RecordingTracer(metrics=registry)
        registry.counter("x").inc()
        tracer.emit(WriteFault(t=0, pfn=0))
        tracer.clear()
        assert tracer.events == []
        assert tracer.dropped == 0
        assert tracer.metrics.counter("x").value == 1

    def test_owns_registry_by_default(self):
        assert isinstance(RecordingTracer().metrics, MetricsRegistry)
