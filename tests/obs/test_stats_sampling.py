"""The once-dead ``ViyojitStats.dirty_page_samples`` now fills, bounded."""

from __future__ import annotations

from repro.core.config import ViyojitConfig
from repro.core.runtime import Viyojit
from repro.core.stats import MAX_DIRTY_SAMPLES, ViyojitStats
from repro.sim.events import Simulation

PAGE = 4096


class TestRecordDirtyLevel:
    def test_appends_samples(self):
        stats = ViyojitStats()
        for level in (1, 5, 3):
            stats.record_dirty_level(level)
        assert stats.dirty_page_samples == [1, 5, 3]
        assert stats.peak_dirty_pages == 5

    def test_bounded_by_decimation(self):
        stats = ViyojitStats()
        for level in range(3 * MAX_DIRTY_SAMPLES):
            stats.record_dirty_level(level)
        assert len(stats.dirty_page_samples) < MAX_DIRTY_SAMPLES
        assert stats._sample_stride > 1
        kept = stats.dirty_page_samples
        assert kept == sorted(kept)  # the ramp survives decimation in order
        assert stats.peak_dirty_pages == 3 * MAX_DIRTY_SAMPLES - 1  # peak exact

    def test_decimation_deterministic(self):
        def run():
            stats = ViyojitStats()
            for level in range(10_000):
                stats.record_dirty_level(level % 37)
            return list(stats.dirty_page_samples)

        assert run() == run()

    def test_summary_exposes_samples(self):
        stats = ViyojitStats()
        stats.record_dirty_level(4)
        stats.record_dirty_level(8)
        summary = stats.summary()
        assert summary["dirty_samples"] == 2
        assert summary["mean_dirty_pages"] == 6.0
        assert summary["peak_dirty_pages"] == 8

    def test_mean_of_empty_is_zero(self):
        assert ViyojitStats().mean_dirty_pages() == 0.0


class TestRuntimePopulatesSamples:
    def test_live_system_fills_samples(self):
        sim = Simulation()
        system = Viyojit(
            sim, num_pages=64, config=ViyojitConfig(dirty_budget_pages=8)
        )
        system.start()
        mapping = system.mmap(32 * PAGE)
        for i in range(64):
            system.write(mapping.addr((i % 32) * PAGE), b"y" * 32)
        stats = system.stats
        # One sample per dirtied page + one per epoch tick, all bounded.
        assert len(stats.dirty_page_samples) > 0
        assert max(stats.dirty_page_samples) == stats.peak_dirty_pages
        assert all(
            0 <= s <= system.dirty_budget_pages for s in stats.dirty_page_samples
        )
        assert stats.summary()["dirty_samples"] == len(stats.dirty_page_samples)
