"""Unit tests for the request-key distributions."""

import numpy as np
import pytest

from repro.workloads.distributions import (
    CounterGenerator,
    HotspotGenerator,
    LatestGenerator,
    ScrambledZipfianGenerator,
    UniformGenerator,
    ZipfianGenerator,
    zeta,
)


class TestZeta:
    def test_known_harmonic(self):
        assert zeta(3, 1.0 - 1e-12) == pytest.approx(1 + 1 / 2 + 1 / 3, rel=1e-6)

    def test_incremental_matches_direct(self):
        direct = zeta(100, 0.99)
        partial = zeta(60, 0.99)
        incremental = zeta(100, 0.99, initial_sum=partial, from_n=60)
        assert incremental == pytest.approx(direct)

    def test_invalid(self):
        with pytest.raises(ValueError):
            zeta(5, 0.99, from_n=10)


class TestZipfian:
    def test_range(self):
        gen = ZipfianGenerator(100, seed=1)
        draws = [gen.next() for _ in range(1000)]
        assert all(0 <= d < 100 for d in draws)

    def test_rank_zero_most_popular(self):
        gen = ZipfianGenerator(1000, seed=2)
        draws = [gen.next() for _ in range(5000)]
        counts = np.bincount(draws, minlength=1000)
        assert counts[0] == counts.max()

    def test_skew_head_heavy(self):
        """With theta=0.99 over 1000 items, the top 10% takes most draws."""
        gen = ZipfianGenerator(1000, seed=3)
        draws = np.array([gen.next() for _ in range(20_000)])
        head = (draws < 100).mean()
        assert head > 0.6

    def test_deterministic(self):
        a = [ZipfianGenerator(50, seed=9).next() for _ in range(20)]
        b = [ZipfianGenerator(50, seed=9).next() for _ in range(20)]
        assert a == b

    def test_sample_matches_distribution_shape(self):
        gen = ZipfianGenerator(1000, seed=4)
        batch = gen.sample(20_000)
        assert batch.min() >= 0 and batch.max() < 1000
        counts = np.bincount(batch, minlength=1000)
        assert counts[0] == counts.max()

    def test_grow(self):
        gen = ZipfianGenerator(10, seed=5)
        gen.grow_to(100)
        draws = [gen.next() for _ in range(500)]
        assert max(draws) >= 10  # new items reachable

    def test_grow_shrink_rejected(self):
        gen = ZipfianGenerator(10)
        with pytest.raises(ValueError):
            gen.grow_to(5)

    def test_validation(self):
        with pytest.raises(ValueError):
            ZipfianGenerator(0)
        with pytest.raises(ValueError):
            ZipfianGenerator(10, theta=1.0)


class TestScrambledZipfian:
    def test_popular_items_scattered(self):
        """The head should NOT be concentrated at low ids."""
        gen = ScrambledZipfianGenerator(1000, seed=6)
        draws = np.array([gen.next() for _ in range(20_000)])
        head_mass = (draws < 100).mean()
        assert head_mass < 0.4  # scrambling spreads the head

    def test_still_skewed(self):
        gen = ScrambledZipfianGenerator(1000, seed=7)
        draws = [gen.next() for _ in range(20_000)]
        counts = np.bincount(draws, minlength=1000)
        top = np.sort(counts)[::-1][:100].sum()
        assert top / len(draws) > 0.5

    def test_sample_agrees_with_next_in_range(self):
        gen = ScrambledZipfianGenerator(500, seed=8)
        batch = gen.sample(1000)
        assert batch.min() >= 0 and batch.max() < 500


class TestLatest:
    def test_newest_most_popular(self):
        gen = LatestGenerator(1000, seed=9)
        draws = np.array([gen.next() for _ in range(10_000)])
        assert (draws > 900).mean() > 0.5

    def test_grow_shifts_popularity(self):
        gen = LatestGenerator(100, seed=10)
        gen.grow_to(200)
        draws = np.array([gen.next() for _ in range(5000)])
        assert (draws > 150).mean() > 0.4


class TestUniform:
    def test_range_and_spread(self):
        gen = UniformGenerator(100, seed=11)
        draws = np.array([gen.next() for _ in range(10_000)])
        counts = np.bincount(draws, minlength=100)
        assert counts.min() > 0
        assert counts.max() / counts.min() < 3

    def test_validation(self):
        with pytest.raises(ValueError):
            UniformGenerator(0)


class TestHotspot:
    def test_hot_set_dominates(self):
        gen = HotspotGenerator(1000, hot_fraction=0.1, hot_access_fraction=0.9, seed=12)
        draws = np.array([gen.next() for _ in range(10_000)])
        assert (draws < 100).mean() > 0.85

    def test_validation(self):
        with pytest.raises(ValueError):
            HotspotGenerator(0)
        with pytest.raises(ValueError):
            HotspotGenerator(10, hot_fraction=0)
        with pytest.raises(ValueError):
            HotspotGenerator(10, hot_access_fraction=2)


class TestCounter:
    def test_monotonic(self):
        gen = CounterGenerator(5)
        assert [gen.next() for _ in range(3)] == [5, 6, 7]
        assert gen.last == 7
