"""Tests for trace persistence (npz/csv round-trips)."""

import numpy as np
import pytest

from repro.workloads.analysis import skew_percentiles, worst_interval_fraction
from repro.workloads.trace_io import (
    load_trace_csv,
    load_trace_npz,
    save_trace_csv,
    save_trace_npz,
)
from repro.workloads.traces import VolumeSpec, generate_volume_trace


@pytest.fixture
def trace():
    spec = VolumeSpec(
        name="T",
        num_pages=500,
        duration_hours=0.5,
        writes_per_hour_fraction=0.4,
    )
    return generate_volume_trace(spec, seed=3)


class TestNpzRoundtrip:
    def test_events_identical(self, trace, tmp_path):
        path = tmp_path / "trace.npz"
        save_trace_npz(trace, path)
        loaded = load_trace_npz(path)
        assert np.array_equal(loaded.t_ns, trace.t_ns)
        assert np.array_equal(loaded.page, trace.page)
        assert np.array_equal(loaded.is_write, trace.is_write)

    def test_spec_preserved(self, trace, tmp_path):
        path = tmp_path / "trace.npz"
        save_trace_npz(trace, path)
        loaded = load_trace_npz(path)
        assert loaded.spec.name == "T"
        assert loaded.spec.num_pages == 500
        assert loaded.spec.duration_hours == 0.5

    def test_analyses_identical(self, trace, tmp_path):
        path = tmp_path / "trace.npz"
        save_trace_npz(trace, path)
        loaded = load_trace_npz(path)
        hour = 3600 * 10**9
        assert worst_interval_fraction(loaded, hour) == (
            worst_interval_fraction(trace, hour)
        )
        assert skew_percentiles(loaded) == skew_percentiles(trace)


class TestCsvRoundtrip:
    def test_events_identical(self, trace, tmp_path):
        path = tmp_path / "trace.csv"
        save_trace_csv(trace, path)
        loaded = load_trace_csv(
            path, num_pages=500, duration_hours=0.5, name="T"
        )
        assert np.array_equal(loaded.t_ns, trace.t_ns)
        assert np.array_equal(loaded.page, trace.page)
        assert np.array_equal(loaded.is_write, trace.is_write)

    def test_header_checked(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b,c\n1,2,3\n")
        with pytest.raises(ValueError, match="header"):
            load_trace_csv(path, num_pages=10, duration_hours=1)

    def test_field_count_checked(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("timestamp_ns,page,is_write\n1,2\n")
        with pytest.raises(ValueError, match="3 fields"):
            load_trace_csv(path, num_pages=10, duration_hours=1)

    def test_page_bounds_checked(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("timestamp_ns,page,is_write\n1,99,1\n")
        with pytest.raises(ValueError, match="outside"):
            load_trace_csv(path, num_pages=10, duration_hours=1)

    def test_events_sorted_on_load(self, tmp_path):
        path = tmp_path / "unsorted.csv"
        path.write_text(
            "timestamp_ns,page,is_write\n500,1,1\n100,2,0\n300,3,1\n"
        )
        loaded = load_trace_csv(path, num_pages=10, duration_hours=1)
        assert loaded.t_ns.tolist() == [100, 300, 500]
        assert loaded.page.tolist() == [2, 3, 1]

    def test_geometry_validation(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("timestamp_ns,page,is_write\n")
        with pytest.raises(ValueError):
            load_trace_csv(path, num_pages=0, duration_hours=1)
        with pytest.raises(ValueError):
            load_trace_csv(path, num_pages=10, duration_hours=0)

    def test_empty_trace(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("timestamp_ns,page,is_write\n")
        loaded = load_trace_csv(path, num_pages=10, duration_hours=1)
        assert len(loaded) == 0
