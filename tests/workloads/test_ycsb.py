"""Unit tests for the YCSB workload mixes."""

import collections

import pytest

from repro.workloads.ycsb import (
    WorkloadSpec,
    YCSB_A,
    YCSB_B,
    YCSB_C,
    YCSB_D,
    YCSB_F,
    YCSB_WORKLOADS,
    generate_operations,
    load_operations,
    make_key,
)


class TestSpecs:
    def test_all_six_defined(self):
        """A/B/C/D/F from the paper, plus E (the paper's future work)."""
        assert set(YCSB_WORKLOADS) == {
            "YCSB-A",
            "YCSB-B",
            "YCSB-C",
            "YCSB-D",
            "YCSB-E",
            "YCSB-F",
        }

    def test_paper_mixes(self):
        assert YCSB_A.read_proportion == 0.5 and YCSB_A.update_proportion == 0.5
        assert YCSB_B.read_proportion == 0.95
        assert YCSB_C.read_proportion == 1.0
        assert YCSB_D.insert_proportion == 0.05
        assert YCSB_F.rmw_proportion == 0.5

    def test_d_uses_latest_distribution(self):
        assert YCSB_D.request_distribution == "latest"

    def test_proportions_must_sum_to_one(self):
        with pytest.raises(ValueError):
            WorkloadSpec("bad", 0.5, 0.2, 0.0, 0.0, "zipfian")

    def test_unknown_distribution_rejected(self):
        with pytest.raises(ValueError):
            WorkloadSpec("bad", 1.0, 0.0, 0.0, 0.0, "pareto")


class TestKeyFormat:
    def test_fixed_width(self):
        assert make_key(0) == b"user00000000000000000000"
        assert len(make_key(12345)) == len(make_key(0))


class TestGeneration:
    def test_mix_matches_spec(self):
        ops = list(generate_operations(YCSB_A, 100, 10_000, seed=1))
        kinds = collections.Counter(op.kind for op in ops)
        assert kinds["read"] / len(ops) == pytest.approx(0.5, abs=0.03)
        assert kinds["update"] / len(ops) == pytest.approx(0.5, abs=0.03)

    def test_c_is_read_only(self):
        ops = list(generate_operations(YCSB_C, 100, 1000, seed=2))
        assert all(op.kind == "read" for op in ops)

    def test_d_inserts_fresh_keys(self):
        ops = list(generate_operations(YCSB_D, 100, 2000, seed=3))
        inserts = [op for op in ops if op.kind == "insert"]
        assert inserts
        keys = [op.key for op in inserts]
        assert len(keys) == len(set(keys))  # each insert key is new
        assert min(keys) >= make_key(100)   # beyond the loaded range

    def test_f_has_rmw(self):
        ops = list(generate_operations(YCSB_F, 100, 2000, seed=4))
        kinds = collections.Counter(op.kind for op in ops)
        assert kinds["rmw"] / len(ops) == pytest.approx(0.5, abs=0.05)

    def test_value_size_attached_to_mutations(self):
        ops = list(generate_operations(YCSB_A, 100, 200, value_size=512, seed=5))
        for op in ops:
            if op.kind in ("update", "insert", "rmw"):
                assert op.value_size == 512
            else:
                assert op.value_size == 0

    def test_deterministic(self):
        a = list(generate_operations(YCSB_A, 50, 100, seed=6))
        b = list(generate_operations(YCSB_A, 50, 100, seed=6))
        assert a == b

    def test_keys_within_loaded_range_for_non_insert(self):
        ops = list(generate_operations(YCSB_B, 100, 1000, seed=7))
        for op in ops:
            assert op.key < make_key(100)

    def test_requests_are_skewed(self):
        ops = list(generate_operations(YCSB_C, 1000, 10_000, seed=8))
        counts = collections.Counter(op.key for op in ops)
        top_100 = sum(count for _key, count in counts.most_common(100))
        assert top_100 / len(ops) > 0.5

    def test_validation(self):
        with pytest.raises(ValueError):
            list(generate_operations(YCSB_A, 0, 10))
        with pytest.raises(ValueError):
            list(generate_operations(YCSB_A, 10, -1))
        with pytest.raises(ValueError):
            list(generate_operations(YCSB_A, 10, 10, value_size=0))


class TestLoadPhase:
    def test_sequential_inserts(self):
        ops = list(load_operations(10, value_size=100))
        assert len(ops) == 10
        assert all(op.kind == "insert" for op in ops)
        assert ops[0].key == make_key(0)
        assert ops[-1].key == make_key(9)

    def test_validation(self):
        with pytest.raises(ValueError):
            list(load_operations(0))
