"""Unit tests for the Figs 2-5 trace analyses."""

import numpy as np
import pytest

from repro.sim.clock import NS_PER_SEC
from repro.workloads.analysis import (
    interval_write_fractions,
    pages_for_write_percentile,
    skew_percentiles,
    worst_interval_fraction,
    write_fraction_of_volume,
    zipf_page_fraction,
    zipf_scaling_table,
)
from repro.workloads.traces import VolumeSpec, VolumeTrace

HOUR_NS = 3600 * NS_PER_SEC


def trace_from(pages, times, writes, num_pages=100, duration_hours=1.0):
    spec = VolumeSpec(
        name="X",
        num_pages=num_pages,
        duration_hours=duration_hours,
        writes_per_hour_fraction=0.0,
    )
    return VolumeTrace(
        spec=spec,
        t_ns=np.asarray(times, dtype=np.int64),
        page=np.asarray(pages, dtype=np.int64),
        is_write=np.asarray(writes, dtype=bool),
    )


class TestIntervalWrites:
    def test_single_interval(self):
        trace = trace_from([0, 1, 2], [0, 100, 200], [True, True, True])
        fractions = interval_write_fractions(trace, HOUR_NS)
        assert fractions[0] == pytest.approx(0.03)

    def test_reads_not_counted(self):
        trace = trace_from([0, 1], [0, 100], [True, False])
        assert worst_interval_fraction(trace, HOUR_NS) == pytest.approx(0.01)

    def test_worst_interval_found(self):
        # 1 write in hour 0, 5 writes in hour 1 (trace must span 2 hours).
        times = [0] + [HOUR_NS + i for i in range(5)]
        trace = trace_from(
            list(range(6)), times, [True] * 6, duration_hours=2.0
        )
        assert worst_interval_fraction(trace, HOUR_NS) == pytest.approx(0.05)

    def test_writes_counted_as_unique_pages(self):
        """Same page written 10x counts as 10 pages (adversarial)."""
        trace = trace_from([3] * 10, list(range(10)), [True] * 10)
        assert worst_interval_fraction(trace, HOUR_NS) == pytest.approx(0.10)

    def test_invalid_interval(self):
        trace = trace_from([0], [0], [True])
        with pytest.raises(ValueError):
            interval_write_fractions(trace, 0)

    def test_empty_trace(self):
        trace = trace_from([], [], [])
        assert worst_interval_fraction(trace, HOUR_NS) == 0.0


class TestPagesForPercentile:
    def test_uniform_counts(self):
        counts = np.array([10, 10, 10, 10])
        assert pages_for_write_percentile(counts, 0.5) == 2
        assert pages_for_write_percentile(counts, 1.0) == 4

    def test_skewed_counts(self):
        counts = np.array([97, 1, 1, 1])
        assert pages_for_write_percentile(counts, 0.9) == 1

    def test_zero_writes(self):
        assert pages_for_write_percentile(np.zeros(4), 0.9) == 0

    def test_invalid_percentile(self):
        with pytest.raises(ValueError):
            pages_for_write_percentile(np.array([1]), 0)


class TestSkewPercentiles:
    def test_both_denominators(self):
        # 10 writes on page 0, 1 on page 1; pages 2-9 read only.
        pages = [0] * 10 + [1] + list(range(2, 10))
        writes = [True] * 11 + [False] * 8
        trace = trace_from(pages, list(range(19)), writes, num_pages=100)
        result = skew_percentiles(trace, percentiles=(0.90,))
        # 90% of 11 writes = 9.9 -> page 0 alone covers 10 -> 1 page.
        assert result[0.90]["of_touched"] == pytest.approx(1 / 10)
        assert result[0.90]["of_total"] == pytest.approx(1 / 100)

    def test_percentile_ordering(self):
        rng = np.random.default_rng(0)
        pages = rng.integers(0, 50, size=500)
        trace = trace_from(pages, np.arange(500), [True] * 500, num_pages=50)
        result = skew_percentiles(trace)
        assert (
            result[0.90]["of_touched"]
            <= result[0.95]["of_touched"]
            <= result[0.99]["of_touched"]
        )

    def test_of_total_never_exceeds_of_touched(self):
        rng = np.random.default_rng(1)
        pages = rng.integers(0, 30, size=200)
        trace = trace_from(pages, np.arange(200), [True] * 200, num_pages=100)
        result = skew_percentiles(trace)
        for pct in result:
            assert result[pct]["of_total"] <= result[pct]["of_touched"]


class TestZipfScaling:
    def test_fraction_decreases_with_page_count(self):
        """The Fig 5 claim: more pages -> smaller hot fraction."""
        small = zipf_page_fraction(1_000, 0.90)
        large = zipf_page_fraction(100_000, 0.90)
        assert large < small

    def test_higher_percentile_needs_more_pages(self):
        assert zipf_page_fraction(10_000, 0.99) > zipf_page_fraction(10_000, 0.90)

    def test_full_percentile_needs_all_pages(self):
        assert zipf_page_fraction(100, 1.0) == 1.0

    def test_table_monotone_in_pages(self):
        rows = zipf_scaling_table([1_000, 10_000, 100_000])
        for key in ("fraction_at_90", "fraction_at_95", "fraction_at_99"):
            values = [row[key] for row in rows]
            assert values == sorted(values, reverse=True)

    def test_validation(self):
        with pytest.raises(ValueError):
            zipf_page_fraction(0, 0.9)
        with pytest.raises(ValueError):
            zipf_page_fraction(10, 1.5)
        with pytest.raises(ValueError):
            zipf_page_fraction(10, 0.9, theta=0)


class TestWriteFraction:
    def test_distinct_pages_over_volume(self):
        trace = trace_from([0, 0, 1], [0, 1, 2], [True, True, True], num_pages=10)
        assert write_fraction_of_volume(trace) == pytest.approx(0.2)

    def test_no_writes(self):
        trace = trace_from([0], [0], [False])
        assert write_fraction_of_volume(trace) == 0.0
