"""Unit tests for the synthetic datacenter trace generators."""

import numpy as np
import pytest

from repro.workloads.traces import (
    APPLICATIONS,
    VolumeSpec,
    application_volumes,
    generate_volume_trace,
    scaled_spec,
)


def small_spec(**overrides) -> VolumeSpec:
    base = dict(
        name="T",
        num_pages=2000,
        duration_hours=2.0,
        writes_per_hour_fraction=0.1,
    )
    base.update(overrides)
    return VolumeSpec(**base)


class TestSpecValidation:
    def test_defaults(self):
        spec = small_spec()
        assert spec.total_writes == 400  # 0.1 * 2000 * 2h

    def test_bad_pages(self):
        with pytest.raises(ValueError):
            small_spec(num_pages=0)

    def test_bad_skew(self):
        with pytest.raises(ValueError):
            small_spec(write_skew="weird")

    def test_bad_footprint(self):
        with pytest.raises(ValueError):
            small_spec(write_footprint_fraction=0)
        with pytest.raises(ValueError):
            small_spec(write_footprint_fraction=1.5)

    def test_bad_burstiness(self):
        with pytest.raises(ValueError):
            small_spec(burstiness=-0.1)

    def test_duration_ns(self):
        assert small_spec(duration_hours=1).duration_ns == 3600 * 10**9


class TestGeneration:
    def test_trace_shape(self):
        trace = generate_volume_trace(small_spec(), seed=1)
        assert len(trace) == len(trace.t_ns) == len(trace.page)
        assert trace.is_write.sum() == trace.spec.total_writes

    def test_times_sorted_and_in_range(self):
        trace = generate_volume_trace(small_spec(), seed=2)
        assert (np.diff(trace.t_ns) >= 0).all()
        assert trace.t_ns.min() >= 0
        assert trace.t_ns.max() <= trace.spec.duration_ns

    def test_pages_in_range(self):
        trace = generate_volume_trace(small_spec(), seed=3)
        assert trace.page.min() >= 0
        assert trace.page.max() < trace.spec.num_pages

    def test_deterministic(self):
        a = generate_volume_trace(small_spec(), seed=4)
        b = generate_volume_trace(small_spec(), seed=4)
        assert np.array_equal(a.page, b.page)
        assert np.array_equal(a.t_ns, b.t_ns)

    def test_unique_writes_never_repeat_before_wrap(self):
        spec = small_spec(write_skew="unique", writes_per_hour_fraction=0.2)
        trace = generate_volume_trace(spec, seed=5)
        writes = trace.writes
        assert len(np.unique(writes)) == len(writes)  # fewer writes than pages

    def test_unique_writes_wrap_when_exhausted(self):
        spec = small_spec(
            write_skew="unique", num_pages=100, writes_per_hour_fraction=1.0
        )
        trace = generate_volume_trace(spec, seed=6)
        assert len(trace.writes) == 200
        assert len(np.unique(trace.writes)) == 100

    def test_zipf_writes_are_skewed(self):
        spec = small_spec(
            write_skew="zipf", zipf_theta=0.95, writes_per_hour_fraction=1.0,
            write_footprint_fraction=0.5,
        )
        trace = generate_volume_trace(spec, seed=7)
        counts = np.bincount(trace.writes, minlength=spec.num_pages)
        top_decile = np.sort(counts)[::-1][: spec.num_pages // 10].sum()
        assert top_decile / counts.sum() > 0.5

    def test_read_multiple(self):
        spec = small_spec(read_ops_multiple=3.0)
        trace = generate_volume_trace(spec, seed=8)
        reads = (~trace.is_write).sum()
        assert reads == pytest.approx(3 * trace.is_write.sum(), rel=0.01)

    def test_touched_pages_counts_reads_and_writes(self):
        trace = generate_volume_trace(small_spec(), seed=9)
        manual = len(np.unique(trace.page))
        assert trace.touched_pages == manual

    def test_mismatched_arrays_rejected(self):
        trace = generate_volume_trace(small_spec(), seed=10)
        from repro.workloads.traces import VolumeTrace

        with pytest.raises(ValueError):
            VolumeTrace(
                spec=trace.spec,
                t_ns=trace.t_ns[:-1],
                page=trace.page,
                is_write=trace.is_write,
            )


class TestApplicationTable:
    def test_four_applications(self):
        assert set(APPLICATIONS) == {
            "azure_blob",
            "cosmos",
            "page_rank",
            "search_index",
        }

    def test_volume_counts_match_paper_panels(self):
        assert len(APPLICATIONS["azure_blob"]) == 8   # A-H
        assert len(APPLICATIONS["cosmos"]) == 7       # A-G
        assert len(APPLICATIONS["page_rank"]) == 6    # A-F
        assert len(APPLICATIONS["search_index"]) == 6 # A-F

    def test_cosmos_trace_is_3_5_hours(self):
        for spec in APPLICATIONS["cosmos"]:
            assert spec.duration_hours == 3.5
        for spec in APPLICATIONS["azure_blob"]:
            assert spec.duration_hours == 24

    def test_application_volumes_copies(self):
        volumes = application_volumes("cosmos")
        volumes.pop()
        assert len(application_volumes("cosmos")) == 7

    def test_unknown_application(self):
        with pytest.raises(ValueError, match="unknown application"):
            application_volumes("bing")

    def test_scaled_spec(self):
        spec = APPLICATIONS["cosmos"][0]
        small = scaled_spec(spec, 0.1)
        assert small.num_pages == pytest.approx(spec.num_pages * 0.1, rel=0.01)
        assert small.writes_per_hour_fraction == spec.writes_per_hour_fraction

    def test_scaled_spec_invalid(self):
        with pytest.raises(ValueError):
            scaled_spec(APPLICATIONS["cosmos"][0], 0)
