"""The compiled op-stream contract: one-pass lowering, zero drift.

:func:`repro.workloads.compiled.compile_workload` lowers a seeded
workload run into struct-of-arrays form exactly once; everything the
repo replays from it — per-op tuples, batches, epoch segments, hotspot
rotation, ``.ops`` round-trips — must be element-for-element identical
to the original generators.  Hypothesis drives the equivalence across
workload mixes, scales, seeds, batch sizes, and rotation amounts; the
binary-format tests pin the checksummed ``.ops`` envelope including
corruption detection.
"""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.runner import iter_segment_ops
from repro.workloads.compiled import (
    CODE_OF,
    KIND_NAMES,
    CompiledStream,
    OpsChecksumError,
    OpsFormatError,
    compile_workload,
    key_array,
    key_rows,
    open_ops,
    ops_checksum,
    save_ops,
)
from repro.workloads.ycsb import (
    YCSB_WORKLOADS,
    generate_operations,
    iter_op_batches,
    make_key,
)

WORKLOADS = sorted(YCSB_WORKLOADS)


def _params():
    return dict(record_count=120, operation_count=700, value_size=512,
                theta=0.9, seed=11)


# --------------------------------------------------------------------------
# Element-for-element equivalence with the generators.


@given(
    workload=st.sampled_from(WORKLOADS),
    record_count=st.integers(min_value=5, max_value=400),
    operation_count=st.integers(min_value=0, max_value=900),
    seed=st.integers(min_value=0, max_value=2**31),
    theta=st.floats(min_value=0.5, max_value=0.99),
)
@settings(max_examples=60, deadline=None)
def test_compiled_equals_generate_operations(
    workload, record_count, operation_count, seed, theta
):
    spec = YCSB_WORKLOADS[workload]
    stream = compile_workload(
        spec, record_count, operation_count, value_size=256,
        theta=theta, seed=seed,
    )
    expected = list(
        generate_operations(
            spec, record_count, operation_count, value_size=256,
            theta=theta, seed=seed,
        )
    )
    assert list(stream.operations()) == expected


@given(
    workload=st.sampled_from(WORKLOADS),
    batch_size=st.integers(min_value=1, max_value=900),
)
@settings(max_examples=40, deadline=None)
def test_compiled_batches_equal_iter_op_batches(workload, batch_size):
    spec = YCSB_WORKLOADS[workload]
    params = _params()
    stream = compile_workload(spec, **params)
    plain = list(iter_op_batches(spec, batch_size=batch_size, **params))
    backed = list(
        iter_op_batches(
            spec, batch_size=batch_size, compiled=stream, **params
        )
    )
    assert backed == plain
    # Flattening reproduces the per-op stream at ANY batch size.
    flattened = [op for batch in backed for op in batch.operations()]
    assert flattened == list(stream.operations())


@given(
    epochs=st.integers(min_value=1, max_value=9),
    rotate=st.integers(min_value=0, max_value=300),
    workload=st.sampled_from(["YCSB-A", "YCSB-D"]),
)
@settings(max_examples=30, deadline=None)
def test_rotation_and_segments_match_iter_segment_ops(
    epochs, rotate, workload
):
    params = _params()
    stream = compile_workload(
        YCSB_WORKLOADS[workload], epochs=epochs, hotspot_rotate_keys=rotate,
        **params,
    )
    expected = list(
        iter_segment_ops(
            workload,
            params["record_count"],
            params["operation_count"],
            params["value_size"],
            params["theta"],
            params["seed"],
            epochs,
            rotate,
        )
    )
    assert list(stream.operations()) == [op for _, _, op in expected]
    bounds = stream.segment_bounds
    for position, segment, _ in expected:
        assert bounds[segment] <= position < bounds[segment + 1]
    assert int(bounds[0]) == 0
    assert int(bounds[epochs]) == len(stream)


def test_key_array_matches_make_key():
    indices = np.array([0, 7, 12345, 10**12], dtype=np.int64)
    assert key_array(indices).tolist() == [make_key(i) for i in indices]
    assert key_array(np.empty(0, dtype=np.int64)).tolist() == []
    rows = key_rows(indices)
    assert rows.shape == (4, 24)
    assert bytes(rows[1]) == make_key(7)
    assert key_rows(np.empty(0, dtype=np.int64)).shape == (0, 24)


def test_kind_vocabulary_is_pinned():
    assert KIND_NAMES == ("read", "update", "insert", "rmw", "scan")
    assert {KIND_NAMES[code] for code in CODE_OF.values()} == set(CODE_OF)


# --------------------------------------------------------------------------
# The .ops binary envelope.


class TestOpsFormat:
    def _stream(self, **overrides) -> CompiledStream:
        params = {**_params(), **overrides}
        return compile_workload(YCSB_WORKLOADS["YCSB-A"], **params)

    def test_round_trip_preserves_everything(self, tmp_path):
        stream = self._stream(epochs=4, hotspot_rotate_keys=13)
        path = str(tmp_path / "a.ops")
        written = save_ops(stream, path)
        reopened = open_ops(path)
        assert reopened.meta() == stream.meta()
        assert np.array_equal(reopened.codes, stream.codes)
        assert np.array_equal(reopened.key_indices, stream.key_indices)
        assert np.array_equal(reopened.value_sizes, stream.value_sizes)
        assert np.array_equal(reopened.scan_lengths, stream.scan_lengths)
        assert np.array_equal(
            reopened.segment_bounds, stream.segment_bounds
        )
        assert list(reopened.operations()) == list(stream.operations())
        assert written == stream.checksum() == ops_checksum(path)
        assert reopened.checksum() == stream.checksum()

    def test_serialization_is_deterministic(self, tmp_path):
        one, two = str(tmp_path / "1.ops"), str(tmp_path / "2.ops")
        save_ops(self._stream(), one)
        save_ops(self._stream(), two)
        with open(one, "rb") as f1, open(two, "rb") as f2:
            assert f1.read() == f2.read()

    def test_sections_are_memmapped_read_only(self, tmp_path):
        path = str(tmp_path / "a.ops")
        save_ops(self._stream(), path)
        reopened = open_ops(path)
        assert isinstance(reopened.codes, np.memmap)
        with pytest.raises((ValueError, RuntimeError)):
            reopened.codes[0] = 9

    @given(damage=st.integers(min_value=0, max_value=10**9))
    @settings(max_examples=20, deadline=None)
    def test_any_flipped_byte_is_detected(self, tmp_path_factory, damage):
        tmp_path = tmp_path_factory.mktemp("ops")
        path = str(tmp_path / "a.ops")
        save_ops(self._stream(operation_count=300), path)
        size = os.path.getsize(path)
        offset = 48 + damage % (size - 48)  # past the header: payload
        with open(path, "r+b") as handle:
            handle.seek(offset)
            byte = handle.read(1)
            handle.seek(offset)
            handle.write(bytes([byte[0] ^ 0xFF]))
        with pytest.raises(OpsChecksumError):
            open_ops(path)

    def test_verify_false_skips_the_checksum(self, tmp_path):
        path = str(tmp_path / "a.ops")
        save_ops(self._stream(operation_count=300), path)
        size = os.path.getsize(path)
        with open(path, "r+b") as handle:
            handle.seek(size - 1)
            byte = handle.read(1)
            handle.seek(size - 1)
            handle.write(bytes([byte[0] ^ 0xFF]))
        open_ops(path, verify=False)  # caller opted out; no raise

    def test_truncated_file_rejected(self, tmp_path):
        path = str(tmp_path / "a.ops")
        save_ops(self._stream(operation_count=300), path)
        with open(path, "rb") as handle:
            data = handle.read()
        with open(path, "wb") as handle:
            handle.write(data[: len(data) // 2])
        with pytest.raises(OpsFormatError):
            open_ops(path)

    def test_not_an_ops_file_rejected(self, tmp_path):
        path = str(tmp_path / "a.ops")
        with open(path, "wb") as handle:
            handle.write(b"definitely not an ops file")
        with pytest.raises(OpsFormatError):
            open_ops(path)
        with pytest.raises(OpsFormatError):
            ops_checksum(path)


# --------------------------------------------------------------------------
# The require() guard: a stream can never silently stand in for the
# wrong workload.


class TestRequire:
    def test_matching_parameters_pass(self):
        params = _params()
        stream = compile_workload(YCSB_WORKLOADS["YCSB-A"], **params)
        stream.require(
            YCSB_WORKLOADS["YCSB-A"],
            params["record_count"],
            params["operation_count"],
            params["value_size"],
            params["theta"],
            params["seed"],
        )

    @pytest.mark.parametrize(
        "field,value",
        [
            ("record_count", 121),
            ("operation_count", 699),
            ("value_size", 513),
            ("theta", 0.91),
            ("seed", 12),
        ],
    )
    def test_any_drifted_parameter_raises(self, field, value):
        params = _params()
        stream = compile_workload(YCSB_WORKLOADS["YCSB-A"], **params)
        drifted = {**params, field: value}
        with pytest.raises(ValueError, match="compiled stream does not match"):
            stream.require(
                YCSB_WORKLOADS["YCSB-A"],
                drifted["record_count"],
                drifted["operation_count"],
                drifted["value_size"],
                drifted["theta"],
                drifted["seed"],
            )

    def test_wrong_workload_raises(self):
        params = _params()
        stream = compile_workload(YCSB_WORKLOADS["YCSB-A"], **params)
        with pytest.raises(ValueError, match="compiled stream does not match"):
            stream.require(
                YCSB_WORKLOADS["YCSB-B"],
                params["record_count"],
                params["operation_count"],
                params["value_size"],
                params["theta"],
                params["seed"],
            )

    def test_epoch_consumers_must_match_epochs(self):
        params = _params()
        stream = compile_workload(
            YCSB_WORKLOADS["YCSB-A"], epochs=4, **params
        )
        with pytest.raises(ValueError, match="compiled stream does not match"):
            stream.require(
                YCSB_WORKLOADS["YCSB-A"],
                params["record_count"],
                params["operation_count"],
                params["value_size"],
                params["theta"],
                params["seed"],
                epochs=5,
            )
