"""Batched op generation reproduces the per-op generators exactly.

``iter_op_batches`` must yield the very same operation stream as
``generate_operations`` — same kinds, same keys, same scan lengths, in
the same order — for every workload and any batch size, because the
sweep engine's determinism rests on the generators being pure functions
of (spec, scale, seed).  The vectorized FNV and distribution ``sample``
paths are pinned against their scalar twins the same way.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.kvstore.hashing import fnv1a, fnv1a_le8, fnv1a_rows
from repro.workloads.distributions import (
    LatestGenerator,
    ScrambledZipfianGenerator,
    ZipfianGenerator,
)
from repro.workloads.ycsb import (
    YCSB_WORKLOADS,
    generate_operations,
    iter_op_batches,
)

OPS = 2_000
RECORDS = 500
SEED = 9


def _flatten(spec, batch_size):
    ops = []
    for batch in iter_op_batches(
        spec, RECORDS, OPS, value_size=200, seed=SEED, batch_size=batch_size
    ):
        assert len(batch) > 0
        ops.extend(batch.operations())
    return ops


@pytest.mark.parametrize("name", sorted(YCSB_WORKLOADS))
@pytest.mark.parametrize("batch_size", [1, 7, 256, 10_000])
def test_batches_flatten_to_per_op_stream(name, batch_size):
    spec = YCSB_WORKLOADS[name]
    expected = list(
        generate_operations(spec, RECORDS, OPS, value_size=200, seed=SEED)
    )
    assert _flatten(spec, batch_size) == expected


def test_batch_size_must_be_positive():
    spec = YCSB_WORKLOADS["YCSB-A"]
    with pytest.raises(ValueError, match="batch_size"):
        next(iter_op_batches(spec, RECORDS, OPS, batch_size=0))


def test_fnv1a_rows_matches_scalar():
    rng = np.random.default_rng(3)
    rows = rng.integers(0, 256, size=(64, 28), dtype=np.uint8)
    vector = fnv1a_rows(rows)
    for row, hashed in zip(rows, vector):
        assert int(hashed) == fnv1a(bytes(row.tobytes()))


def test_fnv1a_le8_matches_scalar():
    rng = np.random.default_rng(4)
    values = rng.integers(0, 2**63, size=200, dtype=np.int64)
    vector = fnv1a_le8(values)
    for value, hashed in zip(values, vector):
        assert int(hashed) == fnv1a(int(value).to_bytes(8, "little"))


def test_fnv1a_rows_rejects_bad_input():
    with pytest.raises(ValueError):
        fnv1a_rows(np.zeros(8, dtype=np.uint8))
    with pytest.raises(ValueError):
        fnv1a_rows(np.zeros((4, 8), dtype=np.int64))


@pytest.mark.parametrize(
    "make",
    [
        lambda: ZipfianGenerator(1_000, seed=11),
        lambda: ScrambledZipfianGenerator(1_000, seed=11),
        lambda: LatestGenerator(1_000, seed=11),
    ],
    ids=["zipfian", "scrambled", "latest"],
)
def test_sample_consumes_rng_like_next(make):
    scalar_gen, vector_gen = make(), make()
    scalar = [scalar_gen.next() for _ in range(500)]
    vector = vector_gen.sample(500).tolist()
    assert scalar == vector
    # The streams stay aligned afterwards, so chunked sampling composes.
    assert scalar_gen.next() == vector_gen.next()
