"""Sweep-scale persistence and shard-layout determinism (satellite S4).

The sweep engine only stays deterministic if (a) traces survive disk
round-trips bit-exactly at realistic event counts and (b) the zipfian
key streams are identical no matter how a run is chunked into batches —
the "shard layout" a different ``--jobs``/batch_size choice produces.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.workloads.distributions import ZipfianGenerator
from repro.workloads.trace_io import (
    load_trace_csv,
    load_trace_npz,
    save_trace_csv,
    save_trace_npz,
)
from repro.workloads.traces import VolumeSpec, generate_volume_trace
from repro.workloads.ycsb import YCSB_WORKLOADS, iter_op_batches


@pytest.fixture(scope="module")
def big_trace():
    spec = VolumeSpec(
        name="S",
        num_pages=40_000,
        duration_hours=2.0,
        writes_per_hour_fraction=1.0,
    )
    trace = generate_volume_trace(spec, seed=5)
    assert len(trace) >= 100_000  # the scale this module is about
    return trace


def test_npz_round_trip_at_sweep_scale(big_trace, tmp_path):
    path = tmp_path / "big.npz"
    save_trace_npz(big_trace, path)
    loaded = load_trace_npz(path)
    assert len(loaded) == len(big_trace)
    assert np.array_equal(loaded.t_ns, big_trace.t_ns)
    assert np.array_equal(loaded.page, big_trace.page)
    assert np.array_equal(loaded.is_write, big_trace.is_write)


def test_csv_round_trip_at_sweep_scale(big_trace, tmp_path):
    path = tmp_path / "big.csv"
    save_trace_csv(big_trace, path)
    loaded = load_trace_csv(
        path,
        num_pages=big_trace.spec.num_pages,
        duration_hours=big_trace.spec.duration_hours,
        name=big_trace.spec.name,
    )
    assert np.array_equal(loaded.t_ns, big_trace.t_ns)
    assert np.array_equal(loaded.page, big_trace.page)
    assert np.array_equal(loaded.is_write, big_trace.is_write)


def test_zipfian_stream_is_shard_layout_invariant():
    """Same seed => same draws, regardless of sample-chunk sizes."""
    reference = ZipfianGenerator(10_000, seed=17).sample(100_000)
    for layout in ([100_000], [1] * 100 + [99_900], [7_321, 92_679],
                   [33_333, 33_333, 33_334]):
        gen = ZipfianGenerator(10_000, seed=17)
        chunks = [gen.sample(count) for count in layout]
        assert np.array_equal(np.concatenate(chunks), reference)


@pytest.mark.parametrize("batch_size", [512, 4_096])
def test_ycsb_ops_identical_across_shard_layouts(batch_size):
    """Every shard layout of the YCSB-A generator yields the same ops."""
    spec = YCSB_WORKLOADS["YCSB-A"]

    def stream(size):
        ops = []
        for batch in iter_op_batches(
            spec, 2_000, 20_000, seed=13, batch_size=size
        ):
            ops.extend(batch.operations())
        return ops

    assert stream(batch_size) == stream(1_024)
