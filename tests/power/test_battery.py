"""Unit tests for the battery model and its derating stack."""

import pytest

from repro.power.battery import (
    SMARTPHONE_BATTERY_JOULES,
    Battery,
)


class TestValidation:
    def test_defaults(self):
        battery = Battery(nominal_joules=1000)
        assert battery.depth_of_discharge == 0.5
        assert battery.density_derate == 0.7

    def test_bad_capacity(self):
        with pytest.raises(ValueError):
            Battery(nominal_joules=0)

    def test_bad_dod(self):
        with pytest.raises(ValueError):
            Battery(nominal_joules=10, depth_of_discharge=0)
        with pytest.raises(ValueError):
            Battery(nominal_joules=10, depth_of_discharge=1.5)

    def test_bad_health(self):
        with pytest.raises(ValueError):
            Battery(nominal_joules=10, health=0)


class TestUsableEnergy:
    def test_dod_halves(self):
        battery = Battery(nominal_joules=1000, depth_of_discharge=0.5)
        assert battery.usable_joules == 500

    def test_full_dod(self):
        battery = Battery(nominal_joules=1000, depth_of_discharge=1.0)
        assert battery.usable_joules == 1000

    def test_degrade_shrinks_usable(self):
        battery = Battery(nominal_joules=1000)
        before = battery.usable_joules
        battery.degrade(0.2)
        assert battery.usable_joules == pytest.approx(before * 0.8)

    def test_degrade_compounds(self):
        battery = Battery(nominal_joules=1000)
        battery.degrade(0.1)
        battery.degrade(0.1)
        assert battery.health == pytest.approx(0.81)

    def test_degrade_bounds(self):
        battery = Battery(nominal_joules=1000)
        with pytest.raises(ValueError):
            battery.degrade(1.0)
        with pytest.raises(ValueError):
            battery.degrade(-0.1)


class TestVolume:
    def test_denser_cells_smaller(self):
        consumer = Battery(nominal_joules=1000, density_derate=1.0)
        datacenter = Battery(nominal_joules=1000, density_derate=0.7)
        assert datacenter.volume_cm3() > consumer.volume_cm3()

    def test_smartphone_equivalents_of_a_phone(self):
        phone = Battery(
            nominal_joules=SMARTPHONE_BATTERY_JOULES,
            depth_of_discharge=1.0,
            density_derate=1.0,
        )
        assert phone.smartphone_equivalents() == pytest.approx(1.0)

    def test_bad_density(self):
        battery = Battery(nominal_joules=10)
        with pytest.raises(ValueError):
            battery.volume_cm3(0)


class TestForUsableEnergy:
    def test_roundtrip(self):
        battery = Battery.for_usable_energy(500, depth_of_discharge=0.5)
        assert battery.usable_joules == pytest.approx(500)
        assert battery.nominal_joules == pytest.approx(1000)

    def test_invalid(self):
        with pytest.raises(ValueError):
            Battery.for_usable_energy(0)
