"""Unit tests for the battery model and its derating stack."""

import pytest

from repro.power.battery import (
    SMARTPHONE_BATTERY_JOULES,
    Battery,
)


class TestValidation:
    def test_defaults(self):
        battery = Battery(nominal_joules=1000)
        assert battery.depth_of_discharge == 0.5
        assert battery.density_derate == 0.7

    def test_bad_capacity(self):
        with pytest.raises(ValueError):
            Battery(nominal_joules=0)

    def test_bad_dod(self):
        with pytest.raises(ValueError):
            Battery(nominal_joules=10, depth_of_discharge=0)
        with pytest.raises(ValueError):
            Battery(nominal_joules=10, depth_of_discharge=1.5)

    def test_bad_health(self):
        with pytest.raises(ValueError):
            Battery(nominal_joules=10, health=0)


class TestUsableEnergy:
    def test_dod_halves(self):
        battery = Battery(nominal_joules=1000, depth_of_discharge=0.5)
        assert battery.usable_joules == 500

    def test_full_dod(self):
        battery = Battery(nominal_joules=1000, depth_of_discharge=1.0)
        assert battery.usable_joules == 1000

    def test_degrade_shrinks_usable(self):
        battery = Battery(nominal_joules=1000)
        before = battery.usable_joules
        battery.degrade(0.2)
        assert battery.usable_joules == pytest.approx(before * 0.8)

    def test_degrade_compounds(self):
        battery = Battery(nominal_joules=1000)
        battery.degrade(0.1)
        battery.degrade(0.1)
        assert battery.health == pytest.approx(0.81)

    def test_degrade_bounds(self):
        battery = Battery(nominal_joules=1000)
        with pytest.raises(ValueError):
            battery.degrade(1.0)
        with pytest.raises(ValueError):
            battery.degrade(-0.1)

    def test_degrade_zero_is_noop(self):
        battery = Battery(nominal_joules=1000)
        battery.degrade(0.0)
        assert battery.health == 1.0

    def test_repeated_degradation_never_reaches_zero(self):
        # Health decays geometrically; it approaches but never hits zero,
        # so the budget arithmetic (which divides by usable energy) stays
        # well-defined no matter how worn the battery gets.
        battery = Battery(nominal_joules=1000)
        for _ in range(200):
            battery.degrade(0.5)
        assert battery.health > 0
        assert battery.usable_joules > 0
        assert battery.health == pytest.approx(0.5**200)


class TestSetHealth:
    def test_pins_health_absolutely(self):
        battery = Battery(nominal_joules=1000)
        battery.degrade(0.4)
        battery.set_health(0.9)
        assert battery.health == 0.9
        assert battery.usable_joules == pytest.approx(1000 * 0.5 * 0.9)

    def test_can_raise_health(self):
        # Battery replacement / telemetry recalibration may *increase*
        # health, which relative degrade() can never do.
        battery = Battery(nominal_joules=1000)
        battery.degrade(0.6)
        battery.set_health(1.0)
        assert battery.usable_joules == pytest.approx(500)

    @pytest.mark.parametrize("bad", [0.0, -0.2, 1.1, 2.0])
    def test_rejects_out_of_range(self, bad):
        battery = Battery(nominal_joules=1000)
        with pytest.raises(ValueError):
            battery.set_health(bad)


class TestVolume:
    def test_denser_cells_smaller(self):
        consumer = Battery(nominal_joules=1000, density_derate=1.0)
        datacenter = Battery(nominal_joules=1000, density_derate=0.7)
        assert datacenter.volume_cm3() > consumer.volume_cm3()

    def test_smartphone_equivalents_of_a_phone(self):
        phone = Battery(
            nominal_joules=SMARTPHONE_BATTERY_JOULES,
            depth_of_discharge=1.0,
            density_derate=1.0,
        )
        assert phone.smartphone_equivalents() == pytest.approx(1.0)

    def test_bad_density(self):
        battery = Battery(nominal_joules=10)
        with pytest.raises(ValueError):
            battery.volume_cm3(0)


class TestForUsableEnergy:
    def test_roundtrip(self):
        battery = Battery.for_usable_energy(500, depth_of_discharge=0.5)
        assert battery.usable_joules == pytest.approx(500)
        assert battery.nominal_joules == pytest.approx(1000)

    def test_invalid(self):
        with pytest.raises(ValueError):
            Battery.for_usable_energy(0)
