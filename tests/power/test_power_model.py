"""Unit tests for the power model: battery <-> dirty-budget arithmetic."""

import pytest

from repro.power.battery import Battery
from repro.power.power_model import PowerModel


class TestValidation:
    def test_defaults_build(self):
        model = PowerModel()
        assert model.system_watts > 0

    def test_negative_watts(self):
        with pytest.raises(ValueError):
            PowerModel(cpu_watts=-1)

    def test_zero_bandwidth(self):
        with pytest.raises(ValueError):
            PowerModel(ssd_flush_bandwidth_bytes_per_s=0)


class TestPaperExample:
    """Section 2.2: 4 TB at 4 GB/s and ~300 W needs ~300 kJ."""

    def test_flush_time_4tb(self):
        model = PowerModel()
        four_tb = 4 * 1024**4
        assert model.flush_time_seconds(four_tb) == pytest.approx(1100, rel=0.05)

    def test_system_power_near_300w(self):
        model = PowerModel()
        assert model.system_watts == pytest.approx(300, rel=0.05)

    def test_energy_near_300kj(self):
        model = PowerModel()
        energy = model.full_backup_energy(4 * 1024**4)
        assert energy == pytest.approx(300_000, rel=0.15)

    def test_seventeen_minute_shutdown(self):
        """Section 8: flushing 4 TB at 4 GB/s takes ~17 minutes."""
        model = PowerModel()
        minutes = model.flush_time_seconds(4 * 1024**4) / 60
        assert minutes == pytest.approx(17, rel=0.15)


class TestDirtyBudget:
    def test_budget_proportional_to_battery(self):
        model = PowerModel()
        small = Battery(nominal_joules=1_000)
        large = Battery(nominal_joules=2_000)
        assert model.dirty_budget_bytes(large) == pytest.approx(
            2 * model.dirty_budget_bytes(small), rel=1e-9
        )

    def test_budget_roundtrip_through_battery(self):
        """battery_for_dirty_bytes and dirty_budget_bytes are inverses."""
        model = PowerModel()
        want_bytes = 2 * 1024**3
        battery = model.battery_for_dirty_bytes(want_bytes)
        assert model.dirty_budget_bytes(battery) == pytest.approx(
            want_bytes, rel=1e-6
        )

    def test_budget_pages(self):
        model = PowerModel()
        battery = model.battery_for_dirty_bytes(4096 * 100)
        assert model.dirty_budget_pages(battery) == pytest.approx(100, abs=1)

    def test_degraded_battery_smaller_budget(self):
        """Section 8: budget retunes down as the battery wears."""
        model = PowerModel()
        battery = Battery(nominal_joules=10_000)
        before = model.dirty_budget_pages(battery)
        battery.degrade(0.3)
        after = model.dirty_budget_pages(battery)
        assert after < before
        assert after == pytest.approx(before * 0.7, rel=0.01)

    def test_negative_dirty_bytes(self):
        model = PowerModel()
        with pytest.raises(ValueError):
            model.flush_time_seconds(-1)

    def test_bad_page_size(self):
        model = PowerModel()
        battery = Battery(nominal_joules=100)
        with pytest.raises(ValueError):
            model.dirty_budget_pages(battery, page_size=0)


class TestViyojitVsBaselineBattery:
    def test_budget_fraction_equals_battery_fraction(self):
        """The core decoupling claim: battery scales with the *budget*,
        not the DRAM size."""
        model = PowerModel()
        nvdram = 64 * 1024**3
        full = model.full_backup_energy(nvdram)
        eleven_pct = model.energy_to_flush(int(nvdram * 0.11))
        assert eleven_pct / full == pytest.approx(0.11, rel=0.01)
