"""Tests for the battery-aging model (section 8 degradation handling)."""

import pytest

from repro.power.aging import AgingModel, budget_trajectory
from repro.power.battery import Battery
from repro.power.power_model import PowerModel


class TestHealth:
    def test_new_battery_full_health(self):
        assert AgingModel().health_after(0) == 1.0

    def test_monotone_decline(self):
        aging = AgingModel()
        healths = [aging.health_after(y) for y in range(8)]
        assert healths == sorted(healths, reverse=True)

    def test_paper_replacement_window(self):
        """Section 2.2: batteries are managed for a 3-4 year life; the
        default fade parameters reach the standard 80% end-of-life point
        inside that window."""
        life = AgingModel().service_life_years(end_of_life_health=0.8)
        assert 3.0 <= life <= 5.0

    def test_hot_ambient_ages_faster(self):
        aging = AgingModel()
        assert aging.health_after(3, hot_ambient=True) < aging.health_after(3)
        assert aging.service_life_years(hot_ambient=True) < (
            aging.service_life_years()
        )

    def test_health_floors_at_zero(self):
        assert AgingModel().health_after(100) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            AgingModel(calendar_fade_per_year=1.0)
        with pytest.raises(ValueError):
            AgingModel(hot_ambient_multiplier=0.5)
        with pytest.raises(ValueError):
            AgingModel().health_after(-1)
        with pytest.raises(ValueError):
            AgingModel().service_life_years(end_of_life_health=1.5)


class TestBudgetTrajectory:
    def build(self):
        model = PowerModel()
        battery = model.battery_for_dirty_bytes(1000 * 4096)
        return battery, model

    def test_budget_shrinks_each_year(self):
        battery, model = self.build()
        rows = budget_trajectory(battery, model, AgingModel(), years=4)
        budgets = [row["budget_pages"] for row in rows]
        assert budgets == sorted(budgets, reverse=True)
        assert budgets[0] == pytest.approx(1000, abs=2)

    def test_battery_not_mutated(self):
        battery, model = self.build()
        before = battery.health
        budget_trajectory(battery, model, AgingModel(), years=3)
        assert battery.health == before

    def test_budget_tracks_health_linearly(self):
        battery, model = self.build()
        rows = budget_trajectory(battery, model, AgingModel(), years=4)
        for row in rows:
            assert row["budget_pages"] == pytest.approx(
                1000 * row["health_pct"] / 100, abs=3
            )

    def test_validation(self):
        battery, model = self.build()
        with pytest.raises(ValueError):
            budget_trajectory(battery, model, AgingModel(), years=0)
