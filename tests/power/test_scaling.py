"""Unit tests for the Fig 1 growth series."""

import pytest

from repro.power.scaling import (
    density_gap,
    dram_growth,
    dram_growth_series,
    figure1_rows,
    lithium_growth,
    lithium_growth_series,
)


class TestAnchors:
    def test_both_start_at_one(self):
        assert dram_growth(1990) == 1.0
        assert lithium_growth(1990) == 1.0

    def test_lithium_3x_over_25_years(self):
        """The paper's headline: ~3.3x lithium density since 1990."""
        assert lithium_growth(2015) == pytest.approx(3.3)

    def test_dram_over_four_orders_of_magnitude(self):
        assert dram_growth(2015) > 5e4

    def test_gap_widens_monotonically(self):
        gaps = [density_gap(year) for year in range(1990, 2021, 5)]
        assert all(b > a for a, b in zip(gaps, gaps[1:]))

    def test_gap_exceeds_10000x_by_2015(self):
        assert density_gap(2015) > 1e4


class TestInterpolation:
    def test_interpolation_between_points(self):
        mid = dram_growth(1992)
        assert 1.0 < mid < 8.0

    def test_log_linear_not_linear(self):
        """Geometric growth: midpoint is the geometric mean."""
        mid = dram_growth(1992.5 if False else 1992)  # 2/5 of the way
        # Just verify it is below the arithmetic midpoint (concave in linear space).
        assert mid < 1.0 + (8.0 - 1.0) * (2 / 5)

    def test_clamps_outside_range(self):
        assert dram_growth(1980) == 1.0
        assert dram_growth(2030) == dram_growth(2020)


class TestSeries:
    def test_series_are_copies(self):
        series = dram_growth_series()
        series.append((2025, 1.0))
        assert dram_growth_series()[-1][0] == 2020

    def test_lithium_series_shape(self):
        series = lithium_growth_series()
        years = [year for year, _ in series]
        assert years == sorted(years)

    def test_figure1_rows_complete(self):
        rows = figure1_rows()
        assert len(rows) == 7
        for row in rows:
            assert {"year", "dram_growth", "lithium_growth", "gap"} <= set(row)
        assert rows[0]["gap"] == pytest.approx(1.0)
