"""Tests for the fleet-economics model (section 2.2's cost argument)."""

import pytest

from repro.power.economics import BatteryCostModel, FleetSpec, fleet_capex_rows
from repro.power.power_model import PowerModel


class TestCostModel:
    def test_paper_anchor_250_dollars(self):
        """'each server's battery may cost over 250$' for a 4 TB backup."""
        model = PowerModel()
        cost = BatteryCostModel()
        battery = model.battery_for_dirty_bytes(4 * 1024**4)
        per_server = cost.battery_cost_usd(battery)
        assert 250 < per_server < 450

    def test_cost_scales_with_energy(self):
        model = PowerModel()
        cost = BatteryCostModel()
        small = model.battery_for_dirty_bytes(1024**4)
        large = model.battery_for_dirty_bytes(4 * 1024**4)
        assert cost.battery_cost_usd(large) > 2 * cost.battery_cost_usd(small)

    def test_flat_costs_floor(self):
        cost = BatteryCostModel()
        model = PowerModel()
        tiny = model.battery_for_dirty_bytes(4096)
        assert cost.battery_cost_usd(tiny) >= (
            cost.maintenance_usd + cost.disposal_usd
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            BatteryCostModel(usd_per_kj=0)
        with pytest.raises(ValueError):
            BatteryCostModel(packaging_multiplier=0.5)
        with pytest.raises(ValueError):
            BatteryCostModel(maintenance_usd=-1)


class TestFleet:
    def test_validation(self):
        with pytest.raises(ValueError):
            FleetSpec(servers=0)
        with pytest.raises(ValueError):
            FleetSpec(nvdram_bytes_per_server=0)

    def test_paper_scale_millions(self):
        """'several million dollars increase in capital expenditure'."""
        rows = fleet_capex_rows(FleetSpec(), PowerModel(), BatteryCostModel())
        full = next(row for row in rows if row["budget_fraction"] == 1.0)
        assert full["fleet_usd_millions"] > 5

    def test_viyojit_saves_most_of_it(self):
        rows = fleet_capex_rows(FleetSpec(), PowerModel(), BatteryCostModel())
        eleven = next(row for row in rows if row["budget_fraction"] == 0.11)
        assert eleven["saving_vs_full_pct"] > 60

    def test_rows_ordered_by_fraction_cost(self):
        rows = fleet_capex_rows(FleetSpec(), PowerModel(), BatteryCostModel())
        costs = [row["per_server_usd"] for row in rows]
        assert costs == sorted(costs, reverse=True)
