"""Tests for the ``python -m repro`` CLI."""

import pytest

from repro.cli import main


class TestDispatch:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig1" in out and "ycsb" in out

    def test_fig1(self, capsys):
        assert main(["fig1"]) == 0
        out = capsys.readouterr().out
        assert "dram_growth" in out
        assert "1990" in out

    def test_fig5(self, capsys):
        assert main(["fig5"]) == 0
        out = capsys.readouterr().out
        assert "fraction_at_99" in out

    def test_sizing(self, capsys):
        assert main(["sizing"]) == 0
        out = capsys.readouterr().out
        assert "energy for full backup" in out

    def test_fig2_with_scale_and_apps(self, capsys):
        assert main(["fig2", "--scale", "0.05", "--apps", "cosmos"]) == 0
        out = capsys.readouterr().out
        assert "one_hour_pct" in out
        assert "cosmos" in out

    def test_fig3(self, capsys):
        assert main(["fig3", "--scale", "0.05", "--apps", "search_index"]) == 0
        assert "p99_pct" in capsys.readouterr().out

    def test_fig4(self, capsys):
        assert main(["fig4", "--scale", "0.05", "--apps", "page_rank"]) == 0
        assert "p95_pct" in capsys.readouterr().out

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_no_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestYCSBCommand:
    def test_small_sweep(self, capsys):
        code = main(
            ["ycsb", "--workloads", "C", "--budgets-gb", "4",
             "--records", "300", "--ops", "600"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Fig 7: throughput" in out
        assert "Fig 8: latency" in out
        assert "Fig 9: SSD write rate" in out
        assert "YCSB-C" in out

    def test_workload_aliases(self, capsys):
        code = main(
            ["ycsb", "--workloads", "ycsb-c", "--budgets-gb", "4",
             "--records", "300", "--ops", "400"]
        )
        assert code == 0

    def test_unknown_workload(self):
        with pytest.raises(SystemExit, match="unknown workload"):
            main(["ycsb", "--workloads", "Z"])


class TestChartFlags:
    def test_fig2_chart(self, capsys):
        assert main(["fig2", "--chart", "--scale", "0.05", "--apps", "cosmos"]) == 0
        out = capsys.readouterr().out
        assert "-- cosmos --" in out
        assert "#" in out

    def test_ycsb_chart(self, capsys):
        code = main(
            ["ycsb", "--workloads", "C", "--budgets-gb", "4,16", "--chart",
             "--records", "300", "--ops", "500"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Fig 7 (chart)" in out
        assert "=baseline" in out


class TestReplayCommand:
    def test_replay(self, capsys):
        assert main(["replay", "--app", "page_rank", "--scale", "0.03"]) == 0
        out = capsys.readouterr().out
        assert "replayed at 15% battery" in out
        assert "eviction_rate" in out


class TestEconomicsCommand:
    def test_economics(self, capsys):
        assert main(["economics", "--servers", "1000"]) == 0
        out = capsys.readouterr().out
        assert "fleet battery capex" in out
        assert "saving_vs_full_pct" in out


class TestAblationCommand:
    def test_ablation(self, capsys):
        assert main(["ablation", "--records", "400", "--ops", "800"]) == 0
        out = capsys.readouterr().out
        assert "stale dirty bits" in out

    @pytest.mark.slow
    def test_policies(self, capsys):
        assert main(["policies", "--records", "500", "--ops", "1000"]) == 0
        out = capsys.readouterr().out
        assert "least-recently-updated" in out
        assert "fifo" in out
