"""Tests for the log-bucketed latency histogram."""

import random

import numpy as np
import pytest

from repro.bench.histogram import LatencyHistogram, _bucket_of, _bucket_midpoint


class TestBucketMapping:
    def test_small_values_exact(self):
        for value in (0, 1, 5, 127):
            index = _bucket_of(value)
            assert _bucket_midpoint(index) == float(value)

    def test_monotone(self):
        values = [0, 1, 100, 1000, 10_000, 10**6, 10**9]
        indices = [_bucket_of(v) for v in values]
        assert indices == sorted(indices)

    def test_relative_error_bound(self):
        rng = random.Random(1)
        for _ in range(500):
            value = rng.randrange(1, 10**9)
            mid = _bucket_midpoint(_bucket_of(value))
            assert abs(mid - value) / value < 0.01


class TestRecording:
    def test_empty(self):
        hist = LatencyHistogram()
        assert hist.count == 0
        assert hist.mean_ns == 0.0
        assert hist.percentile(99) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            LatencyHistogram().record(-1)

    def test_mean_exact(self):
        hist = LatencyHistogram()
        hist.record_many([100, 200, 300])
        assert hist.mean_ns == pytest.approx(200)

    def test_min_max(self):
        hist = LatencyHistogram()
        hist.record_many([500, 5, 50])
        assert hist.min_ns == 5
        assert hist.max_ns == 500

    def test_percentile_validation(self):
        with pytest.raises(ValueError):
            LatencyHistogram().percentile(0)
        with pytest.raises(ValueError):
            LatencyHistogram().percentile(101)


class TestPercentiles:
    def test_against_numpy_on_lognormal(self):
        rng = np.random.default_rng(2)
        samples = (np.exp(rng.normal(10, 1.2, size=20_000))).astype(np.int64)
        hist = LatencyHistogram()
        hist.record_many(int(s) for s in samples)
        for pct in (50, 90, 99):
            exact = float(np.percentile(samples, pct))
            approx = hist.percentile(pct)
            assert approx == pytest.approx(exact, rel=0.02), pct

    def test_percentile_monotone(self):
        rng = random.Random(3)
        hist = LatencyHistogram()
        hist.record_many(rng.randrange(1, 10**7) for _ in range(5000))
        values = [hist.percentile(p) for p in (10, 50, 90, 99, 99.9, 100)]
        assert values == sorted(values)

    def test_summary_ms(self):
        hist = LatencyHistogram()
        hist.record_many([1_000_000] * 99 + [100_000_000])
        summary = hist.summary_ms()
        assert summary["count"] == 100
        assert summary["avg_ms"] == pytest.approx(1.99, rel=0.02)
        assert summary["p50_ms"] == pytest.approx(1.0, rel=0.01)
        assert summary["p999_ms"] == pytest.approx(100.0, rel=0.01)


class TestMerge:
    def test_merge_counts_and_extremes(self):
        a, b = LatencyHistogram(), LatencyHistogram()
        a.record_many([10, 20])
        b.record_many([30])
        merged = a.merge(b)
        assert merged.count == 3
        assert merged.min_ns == 10
        assert merged.max_ns == 30
        assert merged.mean_ns == pytest.approx(20)

    def test_merge_empty(self):
        a = LatencyHistogram()
        a.record(5)
        merged = a.merge(LatencyHistogram())
        assert merged.count == 1
        assert merged.percentile(100) == 5

    def test_merge_matches_union(self):
        rng = random.Random(4)
        xs = [rng.randrange(1, 10**6) for _ in range(2000)]
        ys = [rng.randrange(1, 10**6) for _ in range(2000)]
        a, b, union = LatencyHistogram(), LatencyHistogram(), LatencyHistogram()
        a.record_many(xs)
        b.record_many(ys)
        union.record_many(xs + ys)
        merged = a.merge(b)
        for pct in (50, 95, 99):
            assert merged.percentile(pct) == union.percentile(pct)

    def test_nonzero_buckets_sorted(self):
        hist = LatencyHistogram()
        hist.record_many([1, 1000, 10**6])
        buckets = hist.nonzero_buckets()
        mids = [mid for mid, _count in buckets]
        assert mids == sorted(mids)
        assert sum(count for _mid, count in buckets) == 3
