"""Tests for the trace-replay driver."""

import pytest

from repro.bench.trace_replay import ReplayResult, TraceReplayer, required_battery_fraction
from repro.core.config import ViyojitConfig
from repro.core.runtime import Viyojit
from repro.sim.events import Simulation
from repro.workloads.traces import VolumeSpec, generate_volume_trace

PAGE = 4096


def small_trace(num_pages=200, frac=0.2, skew="zipf", hours=0.01, **kwargs):
    spec = VolumeSpec(
        name="T",
        num_pages=num_pages,
        duration_hours=hours,
        writes_per_hour_fraction=frac / hours,  # keep total writes fixed
        write_skew=skew,
        **kwargs,
    )
    return generate_volume_trace(spec, seed=5)


def make_system(num_pages=512, budget=64):
    sim = Simulation()
    system = Viyojit(
        sim, num_pages=num_pages, config=ViyojitConfig(dirty_budget_pages=budget)
    )
    system.start()
    return system


class TestReplayer:
    def test_volume_must_fit_region(self):
        system = make_system(num_pages=64)
        trace = small_trace(num_pages=200)
        with pytest.raises(ValueError, match="does not fit"):
            TraceReplayer(system, trace)

    def test_write_bytes_validation(self):
        system = make_system()
        trace = small_trace()
        with pytest.raises(ValueError):
            TraceReplayer(system, trace, write_bytes=0)

    def test_replay_counts_events(self):
        system = make_system()
        trace = small_trace()
        replayer = TraceReplayer(system, trace)
        result = replayer.replay(target_duration_ns=20_000_000)
        assert result.events == len(trace)
        assert result.writes == int(trace.is_write.sum())

    def test_budget_respected_during_replay(self):
        budget = 16
        system = make_system(budget=budget)
        trace = small_trace(frac=0.5)
        replayer = TraceReplayer(system, trace)
        result = replayer.replay(target_duration_ns=20_000_000)
        assert result.peak_dirty_pages <= budget
        assert result.peak_budget_utilization <= 1.0

    def test_replay_takes_at_least_target_duration(self):
        system = make_system()
        trace = small_trace()
        replayer = TraceReplayer(system, trace)
        result = replayer.replay(target_duration_ns=30_000_000)
        assert result.elapsed_virtual_ms >= 29.0

    def test_invalid_duration(self):
        system = make_system()
        replayer = TraceReplayer(system, small_trace())
        with pytest.raises(ValueError):
            replayer.replay(target_duration_ns=0)

    def test_skewed_volume_needs_fewer_evictions_than_unique(self):
        """The section 3 claim, measured at runtime."""

        def evictions(skew, theta=0.9):
            system = make_system(budget=24)
            trace = small_trace(
                frac=0.8, skew=skew,
                **({"zipf_theta": theta, "write_footprint_fraction": 0.3}
                   if skew == "zipf" else {}),
            )
            replayer = TraceReplayer(system, trace)
            return replayer.replay(target_duration_ns=40_000_000).eviction_rate

        assert evictions("zipf") < evictions("unique")


class TestRequiredBattery:
    def test_fraction(self):
        result = ReplayResult(
            volume="X", events=10, writes=5, budget_pages=100,
            peak_dirty_pages=15, sync_evictions=0, blocked_ms=0.0,
            bytes_flushed=0, elapsed_virtual_ms=1.0,
        )
        assert required_battery_fraction(result, volume_pages=100) == 0.15

    def test_validation(self):
        result = ReplayResult(
            volume="X", events=0, writes=0, budget_pages=1,
            peak_dirty_pages=0, sync_evictions=0, blocked_ms=0.0,
            bytes_flushed=0, elapsed_virtual_ms=0.0,
        )
        with pytest.raises(ValueError):
            required_battery_fraction(result, 0)

    def test_eviction_rate_zero_writes(self):
        result = ReplayResult(
            volume="X", events=0, writes=0, budget_pages=0,
            peak_dirty_pages=0, sync_evictions=0, blocked_ms=0.0,
            bytes_flushed=0, elapsed_virtual_ms=0.0,
        )
        assert result.eviction_rate == 0.0
        assert result.peak_budget_utilization == 0.0
