"""Tests for the per-figure experiment builders (tiny scales)."""

import pytest

from repro.bench.experiments import (
    CONSERVATIVE_OP,
    DEFAULT_BUDGET_FRACTIONS,
    battery_sizing_rows,
    fig1_table,
    fig2_rows,
    fig3_rows,
    fig4_rows,
    fig5_rows,
    fig7_rows,
    fig8_rows,
    fig9_rows,
    fig10_rows,
    run_sweep,
    stale_bits_ablation,
)
from repro.bench.runner import ExperimentScale
from repro.workloads.ycsb import YCSB_A, YCSB_C

TINY = ExperimentScale(record_count=300, operation_count=600)
FRACTIONS = (0.12, 0.5)


@pytest.fixture(scope="module")
def sweep():
    return run_sweep(
        workloads=(YCSB_A, YCSB_C), budget_fractions=FRACTIONS, scale=TINY
    )


class TestSweep:
    def test_contains_baselines_and_budgets(self, sweep):
        assert ("YCSB-A", None) in sweep
        assert ("YCSB-A", 0.12) in sweep
        assert ("YCSB-C", 0.5) in sweep
        assert len(sweep) == 6

    def test_default_fractions_span_the_paper_axis(self):
        gbs = [round(f * 17.5) for f in DEFAULT_BUDGET_FRACTIONS]
        assert gbs == [2, 4, 6, 8, 10, 12, 14, 16, 18]


class TestFig7(object):
    def test_rows_shape(self, sweep):
        rows = fig7_rows(sweep)
        assert len(rows) == 4  # 2 workloads x 2 budgets
        for row in rows:
            assert {"workload", "budget_gb", "viyojit_kops", "nvdram_kops",
                    "overhead_pct"} <= set(row)

    def test_overhead_decreases_with_budget(self, sweep):
        rows = [r for r in fig7_rows(sweep) if r["workload"] == "YCSB-A"]
        assert rows[0]["budget_gb"] < rows[-1]["budget_gb"]
        assert rows[-1]["overhead_pct"] <= rows[0]["overhead_pct"]


class TestFig8:
    def test_conservative_ops(self):
        assert CONSERVATIVE_OP["YCSB-A"] == "update"
        assert CONSERVATIVE_OP["YCSB-C"] == "read"
        assert CONSERVATIVE_OP["YCSB-D"] == "insert"
        assert CONSERVATIVE_OP["YCSB-F"] == "rmw"

    def test_rows_have_tails_above_baseline(self, sweep):
        rows = fig8_rows(sweep)
        assert rows
        for row in rows:
            # The paper: Viyojit p99 always above the baseline p99.
            assert row["viyojit_p99_ms"] >= row["nvdram_p99_ms"]


class TestFig9:
    def test_write_rates_present(self, sweep):
        rows = fig9_rows(sweep)
        assert len(rows) == 4
        write_heavy = [r for r in rows if r["workload"] == "YCSB-A"]
        read_only = [r for r in rows if r["workload"] == "YCSB-C"]
        # Write-heavy workloads push more flush traffic than read-only.
        assert max(r["write_rate_mb_s"] for r in write_heavy) >= max(
            r["write_rate_mb_s"] for r in read_only
        )


class TestFig10:
    def test_larger_heap_lower_overhead_for_write_heavy(self):
        rows = fig10_rows(
            small_scale=TINY,
            heap_multiple=3.0,
            budget_fractions=(0.12,),
            workloads=(YCSB_A,),
        )
        small = next(r for r in rows if r["heap"] == "1x heap")
        large = next(r for r in rows if r["heap"] == "3x heap")
        assert large["overhead_pct"] <= small["overhead_pct"] + 2.0


class TestAblation:
    def test_stale_bits_hurt(self):
        # Needs a budget sized to the hot set for the inversion to show.
        scale = ExperimentScale(record_count=2000, operation_count=5000)
        rows = stale_bits_ablation(scale=scale, budget_fraction=0.12)
        fresh = rows[0]["throughput_kops"]
        stale = rows[1]["throughput_kops"]
        assert stale < fresh
        assert rows[2]["throughput_kops"] > 1.0  # slowdown factor


class TestMotivationFigures:
    def test_fig1(self):
        rows = fig1_table()
        assert rows[-1]["gap"] > rows[0]["gap"]

    def test_fig2_tiny(self):
        rows = fig2_rows(applications=["cosmos"], volume_scale=0.05, seed=1)
        assert len(rows) == 7
        for row in rows:
            assert row["one_minute_pct"] <= row["one_hour_pct"] + 1e-9

    def test_fig3_fig4_relationship(self):
        f3 = fig3_rows(applications=["cosmos"], volume_scale=0.05, seed=1)
        f4 = fig4_rows(applications=["cosmos"], volume_scale=0.05, seed=1)
        for touched, total in zip(f3, f4):
            assert total["p99_pct"] <= touched["p99_pct"] + 1e-9

    def test_fig5_monotone(self):
        rows = fig5_rows(page_counts=(1_000, 10_000, 100_000))
        fractions = [row["fraction_at_90"] for row in rows]
        assert fractions == sorted(fractions, reverse=True)

    def test_battery_sizing(self):
        rows = battery_sizing_rows()
        by_name = {row["quantity"]: row["value"] for row in rows}
        assert by_name["energy for full backup (kJ)"] == pytest.approx(300, rel=0.15)
        assert by_name["smartphone-battery volumes (no derating)"] == pytest.approx(
            11, rel=0.2
        )
        assert by_name[
            "smartphone-battery volumes (DoD 50% + 30% denser penalty)"
        ] > 25
