"""Tests for the experiment runner (small scales for speed)."""

import pytest

from repro.bench.runner import (
    ExperimentScale,
    LatencySummary,
    YCSBRunner,
    build_baseline,
    build_viyojit,
    run_workload,
    value_bytes,
)
from repro.workloads.ycsb import YCSB_A, YCSB_C

TINY = ExperimentScale(record_count=300, operation_count=800)


class TestExperimentScale:
    def test_defaults_valid(self):
        ExperimentScale()

    def test_record_block_is_one_kib(self):
        assert ExperimentScale().record_block_bytes == 1024

    def test_budget_fraction_mapping(self):
        scale = ExperimentScale(record_count=4000)
        pages = scale.budget_pages_for_fraction(0.5)
        assert pages == pytest.approx(scale.initial_heap_pages * 0.5, abs=1)

    def test_budget_gb_label(self):
        scale = ExperimentScale()
        assert scale.budget_gb_label(2 / 17.5) == pytest.approx(2.0)

    def test_region_exceeds_heap(self):
        scale = ExperimentScale()
        heap_pages = scale.heap_bytes() // 4096
        assert scale.region_pages > heap_pages

    def test_validation(self):
        with pytest.raises(ValueError):
            ExperimentScale(record_count=0)
        with pytest.raises(ValueError):
            ExperimentScale(region_heap_multiple=1.0)
        with pytest.raises(ValueError):
            ExperimentScale().budget_pages_for_fraction(0)


class TestLatencySummary:
    def test_empty(self):
        summary = LatencySummary.from_ns([])
        assert summary.count == 0
        assert summary.avg_ms == 0.0

    def test_stats(self):
        samples = [1_000_000] * 99 + [100_000_000]
        summary = LatencySummary.from_ns(samples)
        assert summary.count == 100
        assert summary.avg_ms == pytest.approx(1.99, rel=0.01)
        assert summary.p99_ms > 1.0


class TestValueBytes:
    def test_deterministic(self):
        assert value_bytes(b"k", 100) == value_bytes(b"k", 100)

    def test_size(self):
        assert len(value_bytes(b"k", 77)) == 77

    def test_nonce_changes_value(self):
        assert value_bytes(b"k", 32, 1) != value_bytes(b"k", 32, 2)


class TestBuilders:
    def test_build_viyojit_started(self):
        sim, system = build_viyojit(TINY, budget_fraction=0.2)
        assert system.config.dirty_budget_pages == TINY.budget_pages_for_fraction(0.2)
        mapping = system.mmap(4096)
        system.write(mapping.base_addr, b"ok")

    def test_build_baseline_started(self):
        sim, system = build_baseline(TINY)
        mapping = system.mmap(4096)
        system.write(mapping.base_addr, b"ok")


class TestRuns:
    def test_run_produces_metrics(self):
        result = run_workload(YCSB_A, TINY, budget_fraction=0.3)
        assert result.ops_executed == TINY.operation_count
        assert result.throughput_kops > 0
        assert result.elapsed_ns > 0
        assert "update" in result.latency
        assert "read" in result.latency
        assert result.viyojit_stats is not None

    def test_baseline_run(self):
        result = run_workload(YCSB_A, TINY, budget_fraction=None)
        assert result.system_kind == "nvdram"
        assert result.budget_fraction is None
        assert result.viyojit_stats is None

    def test_viyojit_slower_than_baseline_at_small_budget(self):
        baseline = run_workload(YCSB_A, TINY, None)
        small = run_workload(YCSB_A, TINY, 0.1)
        assert small.throughput_kops < baseline.throughput_kops

    def test_read_only_has_no_update_latency(self):
        result = run_workload(YCSB_C, TINY, 0.5)
        assert set(result.latency) == {"read"}

    def test_ssd_traffic_recorded_for_viyojit(self):
        result = run_workload(YCSB_A, TINY, 0.1)
        assert result.ssd_bytes_written > 0
        assert result.avg_write_rate_mb_s > 0

    def test_budget_respected_during_run(self):
        sim, system = build_viyojit(TINY, budget_fraction=0.15)
        runner = YCSBRunner(sim, system, TINY)
        runner.load()
        runner.run(YCSB_A)
        assert (
            system.stats.peak_dirty_pages
            <= system.config.dirty_budget_pages
        )

    def test_stale_bits_slower_at_small_budget(self):
        # The inversion needs a budget that actually fits the hot set;
        # at the 300-record TINY scale both variants thrash equally.
        scale = ExperimentScale(record_count=2000, operation_count=5000)
        fresh = run_workload(YCSB_A, scale, 0.12, flush_tlb_on_scan=True)
        stale = run_workload(YCSB_A, scale, 0.12, flush_tlb_on_scan=False)
        assert stale.throughput_kops < fresh.throughput_kops
        # Stale recency information causes extra hot-page evictions, which
        # show up as extra write faults (each evicted hot page re-faults).
        assert (
            stale.viyojit_stats["write_faults"]
            > fresh.viyojit_stats["write_faults"]
        )
