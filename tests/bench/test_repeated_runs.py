"""Tests for the three-runs-with-RMSE protocol (section 6.1)."""

import pytest

from repro.bench.runner import ExperimentScale, run_workload_repeated
from repro.workloads.ycsb import YCSB_C

TINY = ExperimentScale(record_count=300, operation_count=500)


class TestRepeatedRuns:
    def test_three_runs_by_default(self):
        result = run_workload_repeated(YCSB_C, TINY, 0.5)
        assert len(result.runs) == 3

    def test_mean_within_run_range(self):
        result = run_workload_repeated(YCSB_C, TINY, 0.5)
        values = [run.throughput_kops for run in result.runs]
        assert min(values) <= result.mean_kops <= max(values)

    def test_rmse_nonnegative_and_small(self):
        """The paper reports ~2% variance at most for its runs; a
        deterministic simulator with only seed variation should land in
        the same ballpark."""
        result = run_workload_repeated(YCSB_C, TINY, 0.5)
        assert result.rmse_kops >= 0
        assert result.rmse_kops < result.mean_kops * 0.1

    def test_seeds_actually_vary(self):
        result = run_workload_repeated(YCSB_C, TINY, 0.5)
        elapsed = {run.elapsed_ns for run in result.runs}
        assert len(elapsed) > 1  # different op streams -> different runs

    def test_latency_mean(self):
        result = run_workload_repeated(YCSB_C, TINY, 0.5)
        avg = result.latency_mean_ms("read")
        p99 = result.latency_mean_ms("read", tail=True)
        assert 0 < avg <= p99

    def test_latency_mean_unknown_kind(self):
        result = run_workload_repeated(YCSB_C, TINY, 0.5)
        with pytest.raises(KeyError):
            result.latency_mean_ms("update")

    def test_runs_validation(self):
        with pytest.raises(ValueError):
            run_workload_repeated(YCSB_C, TINY, 0.5, runs=0)

    def test_baseline_repeats(self):
        result = run_workload_repeated(YCSB_C, TINY, None, runs=2)
        assert len(result.runs) == 2
        assert all(run.system_kind == "nvdram" for run in result.runs)
