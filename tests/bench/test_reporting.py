"""Unit tests for ASCII reporting."""

import pytest

from repro.bench.reporting import format_series, format_table, overhead_percent


class TestFormatTable:
    def test_empty(self):
        assert "(no rows)" in format_table([])

    def test_title_and_alignment(self):
        rows = [{"a": 1, "b": "xx"}, {"a": 22, "b": "y"}]
        out = format_table(rows, title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "b" in lines[1]
        assert len(lines) == 5  # title, header, rule, 2 rows

    def test_column_selection(self):
        rows = [{"a": 1, "b": 2, "c": 3}]
        out = format_table(rows, columns=["c", "a"])
        header = out.splitlines()[0]
        assert "c" in header and "a" in header and "b" not in header

    def test_missing_cell_blank(self):
        rows = [{"a": 1}, {"a": 2, "b": 3}]
        out = format_table(rows, columns=["a", "b"])
        assert "3" in out

    def test_float_formatting(self):
        rows = [{"v": 0.123456}, {"v": 123456.0}, {"v": 0.0}]
        out = format_table(rows)
        assert "0.123" in out
        assert "1.23e+05" in out


class TestFormatSeries:
    def test_basic(self):
        out = format_series(
            {"viyojit": [1.0, 2.0], "nvdram": [3.0, 4.0]},
            x_label="budget",
            x_values=[10, 20],
        )
        lines = out.splitlines()
        assert "budget" in lines[0]
        assert "viyojit" in lines[0]
        assert len(lines) == 4

    def test_length_mismatch(self):
        with pytest.raises(ValueError, match="points"):
            format_series({"s": [1.0]}, "x", [1, 2])


class TestOverhead:
    def test_positive_overhead(self):
        assert overhead_percent(100, 80) == pytest.approx(20)

    def test_negative_overhead_means_speedup(self):
        assert overhead_percent(100, 110) == pytest.approx(-10)

    def test_zero_baseline_rejected(self):
        with pytest.raises(ValueError):
            overhead_percent(0, 10)
