"""Tests for the ASCII chart renderers."""

import pytest

from repro.bench.charts import bar_chart, grouped_bar_chart, line_plot


class TestBarChart:
    def test_basic(self):
        rows = [{"v": "A", "pct": 10.0}, {"v": "B", "pct": 5.0}]
        out = bar_chart(rows, "v", "pct", title="T", width=10)
        lines = out.splitlines()
        assert lines[0] == "T"
        assert lines[1].count("#") == 10  # max value fills the width
        assert lines[2].count("#") == 5

    def test_empty(self):
        assert "(no data)" in bar_chart([], "v", "pct")

    def test_zero_values(self):
        rows = [{"v": "A", "pct": 0.0}]
        out = bar_chart(rows, "v", "pct")
        assert "#" not in out

    def test_shared_max(self):
        rows = [{"v": "A", "pct": 5.0}]
        out = bar_chart(rows, "v", "pct", width=10, max_value=10.0)
        assert out.splitlines()[0].count("#") == 5

    def test_validation(self):
        with pytest.raises(ValueError):
            bar_chart([], "v", "pct", width=0)

    def test_labels_aligned(self):
        rows = [{"v": "long-label", "pct": 1.0}, {"v": "x", "pct": 2.0}]
        lines = bar_chart(rows, "v", "pct").splitlines()
        assert lines[0].index("|") == lines[1].index("|")


class TestGroupedBarChart:
    def test_panels(self):
        rows = [
            {"app": "cosmos", "vol": "A", "pct": 10.0},
            {"app": "cosmos", "vol": "B", "pct": 60.0},
            {"app": "azure", "vol": "A", "pct": 12.0},
        ]
        out = grouped_bar_chart(rows, "app", "vol", "pct", title="Fig 2")
        assert "-- cosmos --" in out
        assert "-- azure --" in out

    def test_shared_scale_across_groups(self):
        rows = [
            {"app": "g1", "vol": "A", "pct": 10.0},
            {"app": "g2", "vol": "A", "pct": 100.0},
        ]
        out = grouped_bar_chart(rows, "app", "vol", "pct", width=10)
        lines = [line for line in out.splitlines() if "#" in line]
        assert lines[0].count("#") == 1   # 10/100 of width
        assert lines[1].count("#") == 10

    def test_empty(self):
        assert "(no data)" in grouped_bar_chart([], "a", "b", "c")


class TestLinePlot:
    def test_shape_and_legend(self):
        out = line_plot(
            [1, 2, 3],
            {"viyojit": [10.0, 20.0, 30.0], "nvdram": [30.0, 30.0, 30.0]},
            title="Fig 7",
            height=6,
            width=20,
        )
        assert "Fig 7" in out
        assert "V=viyojit" in out
        assert "N=nvdram" in out
        assert "30" in out  # y-axis max

    def test_monotone_series_renders_diagonal(self):
        out = line_plot([0, 1, 2, 3], {"s": [0.0, 1.0, 2.0, 3.0]}, height=4, width=16)
        grid_lines = [
            line for line in out.splitlines() if "S" in line and "=s" not in line
        ]
        # Marker appears on every grid row: a rising line.
        assert len(grid_lines) == 4

    def test_flat_series_safe(self):
        out = line_plot([1, 2], {"s": [5.0, 5.0]})
        assert "S" in out

    def test_length_mismatch(self):
        with pytest.raises(ValueError, match="points"):
            line_plot([1, 2], {"s": [1.0]})

    def test_size_validation(self):
        with pytest.raises(ValueError):
            line_plot([1], {"s": [1.0]}, height=2)

    def test_distinct_markers(self):
        out = line_plot(
            [1, 2],
            {"aaa": [1.0, 2.0], "abc": [2.0, 1.0]},
            height=5,
            width=12,
        )
        legend = out.splitlines()[-1]
        assert "=aaa" in legend and "=abc" in legend
        marker_a = legend.split("=aaa")[0].strip().split()[-1]
        marker_b = legend.split("=abc")[0].strip().split()[-1]
        assert marker_a != marker_b

    def test_empty(self):
        assert "(no data)" in line_plot([], {})
