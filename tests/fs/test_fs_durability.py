"""FS-level durability: the battery covers the file system's dirty state."""

import random

import pytest

from repro.core.crash import CrashSimulator, viyojit_battery
from repro.fs.filesystem import NVMFileSystem
from repro.power.power_model import PowerModel
from repro.sim.events import Simulation
from tests.conftest import make_viyojit

PAGE = 4096
BUDGET = 48


def build():
    system = make_viyojit(Simulation(), num_pages=512, budget=BUDGET)
    fs = NVMFileSystem(system, data_pages=384, max_files=24)
    model = PowerModel()
    crash = CrashSimulator(system, model, viyojit_battery(model, BUDGET * PAGE))
    return system, fs, crash


class TestFSDurability:
    def test_survivable_throughout_workload(self):
        system, fs, crash = build()
        rng = random.Random(11)
        for index in range(12):
            fs.create(f"f{index}")
        for step in range(400):
            name = f"f{rng.randrange(12)}"
            fs.write_file(name, rng.randrange(0, 4000), b"d" * 200)
            if step % 50 == 0:
                assert crash.power_failure().survives, step

    def test_file_contents_durable_after_drain(self):
        system, fs, crash = build()
        rng = random.Random(12)
        expected = {}
        for index in range(8):
            name = f"f{index}"
            fs.create(name)
            data = bytes([index]) * rng.randrange(100, 6000)
            fs.write_file(name, 0, data)
            expected[name] = data
        system.drain()
        for pfn, version in system.region.touched_pages():
            assert system.backing.holds_version(pfn, version)
        # And the logical view is intact.
        for name, data in expected.items():
            assert fs.read_file(name, 0, len(data)) == data

    def test_crash_and_recover_filesystem(self):
        """Full circle: workload -> crash -> flush -> recover -> verify."""
        system, fs, crash = build()
        rng = random.Random(13)
        expected = {}
        for index in range(10):
            name = f"file{index}"
            fs.create(name)
            data = bytes([rng.randrange(256)]) * rng.randrange(100, 5000)
            fs.write_file(name, 0, data)
            expected[name] = data
        report = crash.power_failure()
        assert report.survives

        # The recovered image: durable pages + battery-flushed dirty pages.
        fresh = make_viyojit(Simulation(), num_pages=512, budget=BUDGET)
        for pfn in range(system.region.num_pages):
            durable = system.backing.read(pfn)
            if durable is not None:
                fresh.region.load_page(
                    pfn, durable, int(system.region.page_version[pfn])
                )
        for pfn in system.dirty_pages():
            fresh.region.load_page(
                pfn,
                system.region.page_bytes(pfn),
                int(system.region.page_version[pfn]),
            )
        reopened = NVMFileSystem.recover(fresh, data_pages=384, max_files=24)
        assert reopened.list_files() == sorted(expected)
        for name, data in expected.items():
            assert reopened.read_file(name, 0, len(data)) == data
