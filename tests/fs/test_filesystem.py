"""Tests for the NVM file system."""

import random

import pytest

from repro.fs.filesystem import (
    FileNotFound,
    FileSystemFull,
    MAX_EXTENTS,
    NVMFileSystem,
)
from repro.sim.events import Simulation
from tests.conftest import make_viyojit

PAGE = 4096


def build_fs(mode="in-place", data_pages=256, max_files=32, budget=64):
    system = make_viyojit(Simulation(), num_pages=data_pages + 64, budget=budget)
    return system, NVMFileSystem(
        system, data_pages=data_pages, max_files=max_files, mode=mode
    )


class TestValidation:
    def test_bad_geometry(self):
        system = make_viyojit(Simulation(), num_pages=128, budget=16)
        with pytest.raises(ValueError):
            NVMFileSystem(system, data_pages=0)
        with pytest.raises(ValueError):
            NVMFileSystem(system, data_pages=16, max_files=0)
        with pytest.raises(ValueError):
            NVMFileSystem(system, data_pages=16, mode="cow")


class TestCreateDelete:
    def test_create_and_list(self):
        _system, fs = build_fs()
        fs.create("alpha")
        fs.create("beta")
        assert fs.list_files() == ["alpha", "beta"]
        assert fs.exists("alpha")

    def test_duplicate_rejected(self):
        _system, fs = build_fs()
        fs.create("f")
        with pytest.raises(ValueError, match="exists"):
            fs.create("f")

    def test_empty_name_rejected(self):
        _system, fs = build_fs()
        with pytest.raises(ValueError):
            fs.create("")

    def test_long_name_rejected(self):
        _system, fs = build_fs()
        with pytest.raises(ValueError, match="too long"):
            fs.create("x" * 48)

    def test_inode_table_full(self):
        _system, fs = build_fs(max_files=3)
        for i in range(3):
            fs.create(f"f{i}")
        with pytest.raises(FileSystemFull, match="inode table"):
            fs.create("overflow")

    def test_delete_frees_inode_and_pages(self):
        _system, fs = build_fs()
        free_before = fs.free_pages()
        fs.create("f")
        fs.write_file("f", 0, b"x" * 3 * PAGE)
        assert fs.free_pages() == free_before - 3
        fs.delete("f")
        assert fs.free_pages() == free_before
        assert not fs.exists("f")

    def test_delete_missing(self):
        _system, fs = build_fs()
        with pytest.raises(FileNotFound):
            fs.delete("ghost")


class TestReadWrite:
    def test_roundtrip(self):
        _system, fs = build_fs()
        fs.create("f")
        fs.write_file("f", 0, b"hello nvm filesystem")
        assert fs.read_file("f", 0, 100) == b"hello nvm filesystem"

    def test_offset_write_grows_file(self):
        _system, fs = build_fs()
        fs.create("f")
        fs.write_file("f", 10, b"tail")
        size, _pages = fs.stat("f")
        assert size == 14
        assert fs.read_file("f", 0, 14) == b"\x00" * 10 + b"tail"

    def test_overwrite_in_place(self):
        _system, fs = build_fs()
        fs.create("f")
        fs.write_file("f", 0, b"aaaa")
        fs.write_file("f", 1, b"bb")
        assert fs.read_file("f", 0, 4) == b"abba"

    def test_multi_page_file(self):
        _system, fs = build_fs()
        fs.create("big")
        payload = bytes(range(256)) * 64  # 16 KiB
        fs.write_file("big", 0, payload)
        assert fs.read_file("big", 0, len(payload)) == payload
        assert fs.read_file("big", 5000, 100) == payload[5000:5100]

    def test_read_past_eof_clamped(self):
        _system, fs = build_fs()
        fs.create("f")
        fs.write_file("f", 0, b"abc")
        assert fs.read_file("f", 2, 100) == b"c"
        assert fs.read_file("f", 10, 5) == b""

    def test_missing_file(self):
        _system, fs = build_fs()
        with pytest.raises(FileNotFound):
            fs.read_file("nope", 0, 1)
        with pytest.raises(FileNotFound):
            fs.write_file("nope", 0, b"x")

    def test_data_exhaustion(self):
        _system, fs = build_fs(data_pages=8)
        fs.create("f")
        with pytest.raises(FileSystemFull):
            fs.write_file("f", 0, b"z" * 9 * PAGE)

    def test_fragmentation_limit(self):
        """Deleting alternate files fragments; extents are capped."""
        _system, fs = build_fs(data_pages=64, max_files=40)
        for i in range(30):
            fs.create(f"f{i}")
            fs.write_file(f"f{i}", 0, b"x" * PAGE)
        for i in range(0, 30, 2):
            fs.delete(f"f{i}")
        fs.create("frag")
        with pytest.raises(FileSystemFull, match="fragmented|extents"):
            fs.write_file("frag", 0, b"y" * PAGE * (MAX_EXTENTS + 4))


class TestModes:
    def test_log_structured_moves_pages(self):
        _system, fs = build_fs(mode="log-structured")
        fs.create("f")
        fs.write_file("f", 0, b"v1" * 100)
        first_pages = fs._read_inode(fs._names["f"])[2]
        fs.write_file("f", 0, b"v2" * 100)
        second_pages = fs._read_inode(fs._names["f"])[2]
        assert first_pages != second_pages  # fresh pages every write

    def test_in_place_reuses_pages(self):
        _system, fs = build_fs(mode="in-place")
        fs.create("f")
        fs.write_file("f", 0, b"v1" * 100)
        first_pages = fs._read_inode(fs._names["f"])[2]
        fs.write_file("f", 0, b"v2" * 100)
        assert fs._read_inode(fs._names["f"])[2] == first_pages

    def test_log_structured_dirties_more_nvdram(self):
        def dirty_pages_after_rewrites(mode):
            system, fs = build_fs(mode=mode, budget=200)
            fs.create("f")
            for round_num in range(10):
                fs.write_file("f", 0, bytes([round_num]) * PAGE)
            return system.stats.pages_dirtied

        assert dirty_pages_after_rewrites("log-structured") > (
            2 * dirty_pages_after_rewrites("in-place")
        )

    def test_log_structured_preserves_content(self):
        _system, fs = build_fs(mode="log-structured")
        fs.create("f")
        fs.write_file("f", 0, b"base" * 1000)
        fs.write_file("f", 8, b"PATCH")
        expected = bytearray(b"base" * 1000)
        expected[8:13] = b"PATCH"
        assert fs.read_file("f", 0, 4000) == bytes(expected)


class TestRecovery:
    def transplant(self, src_system, geometry):
        dst = make_viyojit(Simulation(), num_pages=geometry + 64, budget=64)
        for pfn, version in src_system.region.touched_pages():
            dst.region.load_page(pfn, src_system.region.page_bytes(pfn), version)
        return dst

    def test_recover_roundtrip(self):
        system, fs = build_fs(data_pages=256)
        fs.create("a")
        fs.write_file("a", 0, b"persistent" * 50)
        fs.create("b")
        fs.write_file("b", 0, b"second file")

        dst = self.transplant(system, 256)
        reopened = NVMFileSystem.recover(dst, data_pages=256, max_files=32)
        assert reopened.list_files() == ["a", "b"]
        assert reopened.read_file("a", 0, 500) == b"persistent" * 50
        assert reopened.read_file("b", 0, 100) == b"second file"

    def test_recovered_fs_is_writable_without_collisions(self):
        system, fs = build_fs(data_pages=256)
        fs.create("old")
        fs.write_file("old", 0, b"o" * 2 * PAGE)

        dst = self.transplant(system, 256)
        reopened = NVMFileSystem.recover(dst, data_pages=256, max_files=32)
        reopened.create("new")
        reopened.write_file("new", 0, b"n" * 3 * PAGE)
        assert reopened.read_file("old", 0, 2 * PAGE) == b"o" * 2 * PAGE
        assert reopened.read_file("new", 0, 3 * PAGE) == b"n" * 3 * PAGE

    def test_recover_rejects_garbage(self):
        dst = make_viyojit(Simulation(), num_pages=256, budget=32)
        with pytest.raises(ValueError, match="magic"):
            NVMFileSystem.recover(dst, data_pages=64, max_files=8)

    def test_recover_rejects_geometry_mismatch(self):
        system, _fs = build_fs(data_pages=256)
        dst = self.transplant(system, 256)
        with pytest.raises(ValueError, match="geometry"):
            NVMFileSystem.recover(dst, data_pages=128, max_files=32)


class TestChurn:
    def test_random_workload_consistency(self):
        _system, fs = build_fs(data_pages=512, max_files=24, budget=128)
        rng = random.Random(7)
        model = {}
        for _ in range(300):
            name = f"file{rng.randrange(12)}"
            action = rng.random()
            if action < 0.5:
                data = bytes([rng.randrange(256)]) * rng.randrange(10, 2000)
                if name not in model:
                    fs.create(name)
                    model[name] = b""
                offset = rng.randrange(0, max(1, len(model[name]) + 1))
                fs.write_file(name, offset, data)
                image = bytearray(model[name].ljust(offset + len(data), b"\x00"))
                image[offset : offset + len(data)] = data
                model[name] = bytes(image)
            elif action < 0.8 and name in model:
                got = fs.read_file(name, 0, len(model[name]))
                assert got == model[name], name
            elif name in model:
                fs.delete(name)
                del model[name]
        assert fs.list_files() == sorted(model)
