"""The ``repro crashfind`` subcommand."""

import json

import pytest

from repro.cli import main
from repro.faults.plan import FaultPlan, SSDFaultRule


def run_cli(capsys, *argv):
    code = main(list(argv))
    out = capsys.readouterr().out
    return code, out


class TestCrashfind:
    def test_table_output_all_ok(self, capsys):
        code, out = run_cli(
            capsys, "crashfind", "--trace", "zipfian", "--ops", "300"
        )
        assert code == 0
        assert "Crash-point exploration" in out
        assert "FAILED" not in out

    def test_json_output_shape(self, capsys):
        code, out = run_cli(
            capsys, "crashfind", "--ops", "300", "--format", "json",
            "--replay", "2",
        )
        assert code == 0
        doc = json.loads(out)
        assert doc["all_ok"] is True
        assert doc["failures"] == []
        assert doc["candidates_total"] > 0
        assert len(doc["replays"]) == 2
        assert all(r["matches"] for r in doc["replays"])

    def test_deterministic_across_invocations(self, capsys):
        argv = ("crashfind", "--ops", "300", "--ssd-fail-rate", "0.02",
                "--format", "json")
        code1, out1 = run_cli(capsys, *argv)
        code2, out2 = run_cli(capsys, *argv)
        assert code1 == code2 == 0
        assert out1 == out2

    def test_ssd_fail_rate_exercises_retries(self, capsys):
        code, out = run_cli(
            capsys, "crashfind", "--ops", "500", "--ssd-fail-rate", "0.05",
            "--format", "json",
        )
        assert code == 0
        doc = json.loads(out)
        assert doc["injected"]["ssd_failures"] > 0
        assert doc["injected"]["flush_retries"] == doc["injected"]["ssd_failures"]
        assert doc["all_ok"] is True

    def test_fault_plan_file(self, capsys, tmp_path):
        plan = FaultPlan(
            seed=7, ssd_rules=(SSDFaultRule(op="write", fail_prob=0.03),)
        )
        path = tmp_path / "plan.json"
        path.write_text(plan.to_json(), encoding="utf-8")
        code, out = run_cli(
            capsys, "crashfind", "--ops", "300", "--fault-plan", str(path),
            "--format", "json",
        )
        assert code == 0
        doc = json.loads(out)
        assert doc["fault_plan"]["seed"] == 7
        assert doc["all_ok"] is True

    def test_baseline_with_op_stride(self, capsys):
        code, out = run_cli(
            capsys, "crashfind", "--system", "nvdram", "--ops", "300",
            "--op-stride", "50", "--format", "json",
        )
        assert code == 0
        doc = json.loads(out)
        assert doc["candidates_total"] == 0
        assert doc["probed"] == 300 // 50 + 1
        assert doc["all_ok"] is True

    def test_crash_points_stride(self, capsys):
        code, out = run_cli(
            capsys, "crashfind", "--ops", "300", "--crash-points", "25",
            "--format", "json",
        )
        assert code == 0
        doc = json.loads(out)
        assert doc["probed"] < doc["candidates_total"]

    def test_bad_crash_points_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["crashfind", "--crash-points", "sometimes"])
        with pytest.raises(SystemExit):
            main(["crashfind", "--crash-points", "0"])

    def test_listed_in_cmd_list(self, capsys):
        code, out = run_cli(capsys, "list")
        assert code == 0
        assert "crashfind" in out
