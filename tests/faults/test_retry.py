"""Flusher retry-with-backoff and typed FlushFailure surfacing."""

import pytest

from repro.core.flusher import FlushFailure
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan, SSDFaultRule
from repro.storage.ssd import SSDFaultError
from tests.conftest import make_viyojit

PAGE = 4096


def always_fail_hook(op, now_ns, size_bytes):
    raise SSDFaultError(op, now_ns, size_bytes)


class TestRetryAbsorbsTransients:
    def test_single_transient_failure_is_retried(self, sim):
        system = make_viyojit(sim, num_pages=64, budget=4, proactive=False)
        failures = {"left": 1}

        def flaky(op, now_ns, size_bytes):
            if failures["left"] > 0:
                failures["left"] -= 1
                raise SSDFaultError(op, now_ns, size_bytes)
            return 0

        system.ssd.fault_hook = flaky
        mapping = system.mmap(16 * PAGE)
        for page in range(16):
            system.write(mapping.base_addr + page * PAGE, b"x")
        system.drain()
        assert system.flusher.retries == 1
        assert system.flusher.retry_failures == 0
        assert system.eviction_flush_failures == 0

    def test_backoff_charges_virtual_time(self, sim):
        system = make_viyojit(sim, num_pages=64, budget=2, proactive=False,
                              flush_retry_backoff_ns=1_000_000)
        failures = {"left": 2}

        def flaky(op, now_ns, size_bytes):
            if failures["left"] > 0:
                failures["left"] -= 1
                raise SSDFaultError(op, now_ns, size_bytes)
            return 0

        system.ssd.fault_hook = flaky
        mapping = system.mmap(8 * PAGE)
        for page in range(4):
            system.write(mapping.base_addr + page * PAGE, b"x")
        # Two rejections back off 1 ms + 2 ms of virtual time.
        assert sim.now >= 3_000_000

    def test_injected_fail_rate_fully_absorbed(self, sim):
        plan = FaultPlan(
            seed=11, ssd_rules=(SSDFaultRule(op="write", fail_prob=0.05),)
        )
        system = make_viyojit(sim, num_pages=256, budget=8)
        injector = FaultInjector(plan, sim)
        injector.attach(ssd=system.ssd)
        mapping = system.mmap(64 * PAGE)
        for step in range(600):
            system.write(mapping.base_addr + (step % 64) * PAGE, b"y" * 32)
        system.drain()
        assert injector.injected_failures > 0
        assert system.flusher.retries == injector.injected_failures
        assert system.flusher.retry_failures == 0
        assert system.dirty_count == 0


class TestRetryExhaustion:
    def test_exhaustion_surfaces_typed_flush_failure(self, sim):
        system = make_viyojit(sim, num_pages=64, budget=2, proactive=False,
                              max_flush_retries=2)
        system.ssd.fault_hook = always_fail_hook
        mapping = system.mmap(8 * PAGE)
        system.write(mapping.base_addr, b"a")
        system.write(mapping.base_addr + PAGE, b"b")
        with pytest.raises(FlushFailure) as excinfo:
            system.write(mapping.base_addr + 2 * PAGE, b"c")
        failure = excinfo.value
        assert failure.attempts == 3  # 1 initial + 2 retries
        assert isinstance(failure.last_error, SSDFaultError)
        assert failure.pfn >= 0
        # The eviction loop rotated through victims before giving up.
        assert system.eviction_flush_failures == system.max_eviction_flush_failures

    def test_failed_flush_rolls_back_protection(self, sim):
        system = make_viyojit(sim, num_pages=64, budget=4, proactive=False,
                              max_flush_retries=0)
        mapping = system.mmap(8 * PAGE)
        system.write(mapping.base_addr, b"a")
        system.ssd.fault_hook = always_fail_hook
        with pytest.raises(FlushFailure):
            system.flusher.issue(next(iter(system.dirty_pages())))
        system.ssd.fault_hook = None
        # The page stayed dirty and writable: a plain write must not trap.
        faults_before = system.mmu.faults
        system.write(mapping.base_addr, b"b")
        assert system.mmu.faults == faults_before
        assert system.flusher.retry_failures == 1

    def test_zero_retries_config(self, sim):
        system = make_viyojit(sim, num_pages=64, budget=2, proactive=False,
                              max_flush_retries=0)
        system.ssd.fault_hook = always_fail_hook
        mapping = system.mmap(8 * PAGE)
        system.write(mapping.base_addr, b"a")
        system.write(mapping.base_addr + PAGE, b"b")
        with pytest.raises(FlushFailure) as excinfo:
            system.write(mapping.base_addr + 2 * PAGE, b"c")
        assert excinfo.value.attempts == 1
        assert system.flusher.retries == 0

    def test_outage_ends_then_system_recovers(self, sim):
        system = make_viyojit(sim, num_pages=64, budget=2, proactive=False)
        system.ssd.fault_hook = always_fail_hook
        mapping = system.mmap(8 * PAGE)
        system.write(mapping.base_addr, b"a")
        system.write(mapping.base_addr + PAGE, b"b")
        with pytest.raises(FlushFailure):
            system.write(mapping.base_addr + 2 * PAGE, b"c")
        # Device comes back: the same write now succeeds and the budget
        # invariant still holds.
        system.ssd.fault_hook = None
        system.write(mapping.base_addr + 2 * PAGE, b"c")
        assert system.dirty_count <= 2
        system.drain()
        assert system.dirty_count == 0


class TestConfigValidation:
    def test_negative_retries_rejected(self, sim):
        with pytest.raises(ValueError):
            make_viyojit(sim, max_flush_retries=-1)

    def test_negative_backoff_rejected(self, sim):
        with pytest.raises(ValueError):
            make_viyojit(sim, flush_retry_backoff_ns=-5)
