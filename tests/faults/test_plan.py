"""FaultPlan validation and JSON round-trip."""

import pytest

from repro.faults.plan import (
    BatteryDegradationStep,
    FaultPlan,
    FaultPlanError,
    PowerCutPoint,
    SSDFaultRule,
    load_fault_plan,
)


class TestSSDFaultRule:
    def test_defaults_are_inert(self):
        rule = SSDFaultRule()
        assert rule.fail_prob == 0.0
        assert rule.delay_prob == 0.0
        assert rule.fail_every == 0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"op": "trim"},
            {"fail_prob": -0.1},
            {"fail_prob": 1.5},
            {"delay_prob": 2.0},
            {"delay_ns": -1},
            {"fail_every": -2},
            {"after_ns": -1},
            {"after_ns": 100, "before_ns": 100},
        ],
    )
    def test_rejects_bad_fields(self, kwargs):
        with pytest.raises(FaultPlanError):
            SSDFaultRule(**kwargs)

    def test_active_window(self):
        rule = SSDFaultRule(op="write", after_ns=100, before_ns=200)
        assert not rule.active_at("write", 99)
        assert rule.active_at("write", 100)
        assert rule.active_at("write", 199)
        assert not rule.active_at("write", 200)
        assert not rule.active_at("read", 150)

    def test_any_matches_both_ops(self):
        rule = SSDFaultRule(op="any")
        assert rule.active_at("write", 0)
        assert rule.active_at("read", 0)


class TestBatteryStep:
    def test_rejects_full_death_and_noop(self):
        with pytest.raises(FaultPlanError):
            BatteryDegradationStep(at_ns=0, fraction=1.0)
        with pytest.raises(FaultPlanError):
            BatteryDegradationStep(at_ns=0, fraction=0.0)
        with pytest.raises(FaultPlanError):
            BatteryDegradationStep(at_ns=-1, fraction=0.5)

    def test_steps_sorted_by_time(self):
        plan = FaultPlan(
            battery_steps=(
                BatteryDegradationStep(at_ns=500, fraction=0.1),
                BatteryDegradationStep(at_ns=100, fraction=0.2),
            )
        )
        assert [s.at_ns for s in plan.battery_steps] == [100, 500]


class TestPowerCutPoint:
    def test_requires_exactly_one_trigger(self):
        with pytest.raises(FaultPlanError):
            PowerCutPoint()
        with pytest.raises(FaultPlanError):
            PowerCutPoint(at_ns=5, on_event="SyncEviction")

    def test_unknown_event_rejected(self):
        with pytest.raises(FaultPlanError):
            PowerCutPoint(on_event="NoSuchEvent")

    def test_occurrence_is_one_based(self):
        with pytest.raises(FaultPlanError):
            PowerCutPoint(on_event="SyncEviction", occurrence=0)


class TestRoundTrip:
    def plan(self):
        return FaultPlan(
            seed=42,
            ssd_rules=(
                SSDFaultRule(op="write", fail_prob=0.02, delay_prob=0.1,
                             delay_ns=200_000),
                SSDFaultRule(op="any", fail_every=100, after_ns=1_000),
            ),
            battery_steps=(BatteryDegradationStep(at_ns=2_000_000, fraction=0.5),),
            power_cut=PowerCutPoint(on_event="SyncEviction", occurrence=3),
        )

    def test_dict_round_trip(self):
        plan = self.plan()
        assert FaultPlan.from_dict(plan.to_dict()) == plan

    def test_file_round_trip(self, tmp_path):
        plan = self.plan()
        path = tmp_path / "plan.json"
        path.write_text(plan.to_json(), encoding="utf-8")
        assert load_fault_plan(str(path)) == plan

    def test_injects_ssd_faults_property(self):
        assert self.plan().injects_ssd_faults
        assert not FaultPlan().injects_ssd_faults
        assert FaultPlan(ssd_rules=(SSDFaultRule(fail_every=7),)).injects_ssd_faults

    def test_unknown_keys_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultPlan.from_dict({"seed": 1, "ssd_ruless": []})

    def test_bad_seed_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultPlan.from_dict({"seed": "tuesday"})
        with pytest.raises(FaultPlanError):
            FaultPlan.from_dict({"seed": True})

    def test_bad_entry_shape_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultPlan.from_dict({"ssd_rules": [{"nope": 1}]})
        with pytest.raises(FaultPlanError):
            FaultPlan.from_dict({"ssd_rules": "many"})

    def test_missing_file_is_typed_error(self, tmp_path):
        with pytest.raises(FaultPlanError):
            load_fault_plan(str(tmp_path / "absent.json"))

    def test_invalid_json_is_typed_error(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(FaultPlanError):
            load_fault_plan(str(path))
