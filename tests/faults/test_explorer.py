"""Crash-point exploration: every boundary recovers, deterministically."""

import pytest

from repro.faults.explorer import (
    CANDIDATE_EVENTS,
    CandidateTriggerTracer,
    CrashPoint,
    CrashProbeTracer,
    explore_crash_points,
)
from repro.faults.plan import BatteryDegradationStep, FaultPlan, SSDFaultRule
from repro.obs.harness import TraceWorkload

SPEC = TraceWorkload(system="viyojit", ops=400)


class TestCleanExploration:
    def test_every_boundary_recovers(self):
        report = explore_crash_points(SPEC)
        assert report.candidates_total > 100
        assert report.probed == report.candidates_total + 1  # + final
        assert report.failures == []
        assert report.all_ok

    def test_all_candidate_kinds_observed(self):
        report = explore_crash_points(SPEC)
        kinds = {p.kind for p in report.points}
        # A budget-bound zipfian run exercises faults, evictions,
        # proactive flushes, and completions.
        for kind in CANDIDATE_EVENTS:
            assert kind in kinds, f"no {kind} boundary explored"

    def test_stride_samples_subset(self):
        full = explore_crash_points(SPEC)
        sampled = explore_crash_points(SPEC, stride=10)
        assert sampled.candidates_total == full.candidates_total
        assert sampled.probed < full.probed
        assert sampled.all_ok

    def test_replay_cross_validation_matches(self):
        report = explore_crash_points(SPEC, replay=5)
        assert len(report.replays) == 5
        assert report.replay_mismatches == 0

    def test_deterministic_checksum(self):
        assert (
            explore_crash_points(SPEC).checksum()
            == explore_crash_points(SPEC).checksum()
        )

    def test_hardware_variant_explorable(self):
        spec = TraceWorkload(system="hardware", ops=300)
        report = explore_crash_points(spec, replay=2)
        assert report.all_ok
        assert report.candidates_total > 0


class TestBaselineExploration:
    def test_op_stride_probes_baseline(self):
        spec = TraceWorkload(system="nvdram", ops=400)
        report = explore_crash_points(spec, op_stride=25)
        assert report.candidates_total == 0  # baseline emits no boundaries
        assert report.probed == 400 // 25 + 1
        assert report.all_ok

    def test_op_stride_composes_with_events(self):
        report = explore_crash_points(SPEC, op_stride=50)
        op_points = [p for p in report.points if p.kind == "op"]
        assert len(op_points) == SPEC.ops // 50
        assert report.all_ok


class TestFaultyExploration:
    def test_injected_write_failures_never_lose_data(self):
        plan = FaultPlan(
            seed=5, ssd_rules=(SSDFaultRule(op="write", fail_prob=0.02),)
        )
        report = explore_crash_points(SPEC, plan)
        assert report.injected_failures > 0
        assert report.flush_retries == report.injected_failures
        assert report.all_ok

    def test_degrading_battery_loses_data_only_in_drain_window(self):
        """Sudden capacity loss opens a *bounded* vulnerability window.

        While the dirty set (sized for the old budget) exceeds what the
        degraded battery can flush, a crash would lose data — physics,
        not a bug.  Section 8's guarantee is the response: the budget
        shrinks immediately and the excess drains at SSD speed.  The
        explorer must (a) flag those window instants honestly, (b) show
        nothing *corrupt* anywhere, and (c) show every boundary after
        the drain safe again.
        """
        step_ns = 800_000
        plan = FaultPlan(
            battery_steps=(
                BatteryDegradationStep(at_ns=step_ns, fraction=0.3),
                BatteryDegradationStep(at_ns=2 * step_ns, fraction=0.3),
            )
        )
        report = explore_crash_points(SPEC, plan)
        # Losses can only appear after the first degradation instant and
        # only while the dirty set still exceeds the degraded budget.
        shrunk_budget = int(SPEC.dirty_budget_pages * 0.7)
        assert report.failures, "expected a transient vulnerability window"
        for point in report.failures:
            assert point.t_ns >= step_ns
            assert point.dirty_pages > shrunk_budget
            assert point.pages_corrupt == 0
        # The drain closes the window: the terminal boundary is safe.
        assert report.points[-1].kind == "final"
        assert report.points[-1].ok
        # And every probed instant recovered all non-window pages intact.
        assert all(p.pages_corrupt == 0 for p in report.points)

    def test_degraded_battery_safe_after_drain(self):
        """Once the graceful shrink has drained, exploration is clean.

        Degrade *before* the workload touches anything: there is no
        excess dirty set to drain, so no window — every boundary of the
        whole run must be safe under the shrunken budget.
        """
        plan = FaultPlan(
            battery_steps=(BatteryDegradationStep(at_ns=1, fraction=0.4),)
        )
        report = explore_crash_points(SPEC, plan)
        assert report.all_ok

    def test_faulty_run_is_deterministic(self):
        plan = FaultPlan(
            seed=9,
            ssd_rules=(SSDFaultRule(op="write", fail_prob=0.02, delay_prob=0.1),),
        )
        a = explore_crash_points(SPEC, plan, replay=3)
        b = explore_crash_points(SPEC, plan, replay=3)
        assert a.as_dict() == b.as_dict()


class TestReportShape:
    def test_failures_flip_all_ok(self):
        report = explore_crash_points(SPEC, stride=100)
        assert report.all_ok
        report.failures.append(
            CrashPoint(
                index=0, t_ns=0, kind="SyncEviction", detail=1,
                dirty_pages=5, survives=False, pages_lost=2, pages_corrupt=0,
            )
        )
        assert not report.all_ok

    def test_crash_point_ok_logic(self):
        good = CrashPoint(index=0, t_ns=0, kind="op", detail=0,
                          dirty_pages=1, survives=True,
                          pages_lost=0, pages_corrupt=0)
        assert good.ok
        bad = CrashPoint(index=0, t_ns=0, kind="op", detail=0,
                         dirty_pages=1, survives=True,
                         pages_lost=1, pages_corrupt=0)
        assert not bad.ok

    def test_as_dict_is_json_shaped(self):
        import json

        report = explore_crash_points(SPEC, stride=50, replay=1)
        text = json.dumps(report.as_dict(), sort_keys=True)
        assert "checksum" in text


class TestTracerValidation:
    def test_probe_tracer_rejects_bad_stride(self):
        with pytest.raises(ValueError):
            CrashProbeTracer(0)

    def test_trigger_tracer_rejects_negative_index(self):
        with pytest.raises(ValueError):
            CandidateTriggerTracer(-1)

    def test_explorer_rejects_bad_args(self):
        with pytest.raises(ValueError):
            explore_crash_points(SPEC, replay=-1)
        with pytest.raises(ValueError):
            explore_crash_points(SPEC, op_stride=-1)
