"""Property tests: the durability invariants hold under *any* seeded plan.

Hypothesis generates fault plans (SSD failure/delay rules, battery
degradation schedules); the suite-wide sanitizer (armed via
``REPRO_SANITIZE`` in ``tests/conftest.py``) re-checks the budget bound
and evicted-page durability at every hook during these runs, so a
violation anywhere in the fault-handling machinery fails the property.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.faults.harness import run_faulted_workload
from repro.faults.plan import BatteryDegradationStep, FaultPlan, SSDFaultRule
from repro.obs.harness import TraceWorkload
from repro.power.power_model import PowerModel

SPEC = TraceWorkload(system="viyojit", ops=150)

ssd_rules = st.lists(
    st.builds(
        SSDFaultRule,
        op=st.sampled_from(["write", "any"]),
        fail_prob=st.floats(min_value=0.0, max_value=0.05),
        delay_prob=st.floats(min_value=0.0, max_value=0.2),
        delay_ns=st.integers(min_value=0, max_value=500_000),
        fail_every=st.sampled_from([0, 0, 50, 97]),
    ),
    max_size=2,
)

battery_steps = st.lists(
    st.builds(
        BatteryDegradationStep,
        at_ns=st.integers(min_value=0, max_value=1_500_000),
        fraction=st.floats(min_value=0.05, max_value=0.6),
    ),
    max_size=2,
    unique_by=lambda s: s.at_ns,
)

plans = st.builds(
    FaultPlan,
    seed=st.integers(min_value=0, max_value=2**31),
    ssd_rules=st.tuples() | ssd_rules.map(tuple),
    battery_steps=st.tuples() | battery_steps.map(tuple),
)

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@given(plan=plans)
@SETTINGS
def test_any_seeded_plan_preserves_durability(plan):
    """Budget-bound + evicted-durability invariants survive any plan.

    The sanitizer enforces the invariants as the run executes; the final
    crash assessment then confirms the (possibly degraded) battery still
    covers the dirty set and recovery rebuilds every page.
    """
    result = run_faulted_workload(SPEC, plan)
    assert result.survived
    assert result.recovery.pages_corrupt == []
    assert result.recovery.pages_lost == []


@given(plan=plans)
@SETTINGS
def test_dirty_budget_never_exceeds_battery_capability(plan):
    """The in-force budget is always flushable by the degraded battery."""
    result = run_faulted_workload(SPEC, plan)
    model = PowerModel()
    page_size = 4096
    # Whatever budget ended up in force, the dirty set it permits must
    # fit the battery that remains — unless the floor (1 page) kicked
    # in, in which case the dirty set itself must still have been
    # covered at the crash instant (checked by `survived` above).
    budget = result.final_budget
    assert budget is not None and budget >= 1
    assert result.crash.dirty_pages <= budget
    needed = model.energy_to_flush(budget * page_size)
    if budget > 1:
        # A non-floor budget is by construction what the battery supports.
        assert result.crash.battery_usable_joules >= needed or result.survived


@given(plan=plans, seed=st.integers(min_value=0, max_value=1000))
@settings(max_examples=10, deadline=None)
def test_plan_runs_are_reproducible(plan, seed):
    """Same plan, same workload seed -> byte-identical outcome dict."""
    spec = TraceWorkload(system="viyojit", ops=100, seed=seed % 50 + 1)
    assert (
        run_faulted_workload(spec, plan).as_dict()
        == run_faulted_workload(spec, plan).as_dict()
    )
