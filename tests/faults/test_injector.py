"""FaultInjector channels: SSD hook, battery steps, power cuts."""

import pytest

from repro.faults.harness import build_faulted_run, run_faulted_workload
from repro.faults.injector import FaultInjector, PowerCut, TriggerTracer
from repro.faults.plan import (
    BatteryDegradationStep,
    FaultPlan,
    PowerCutPoint,
    SSDFaultRule,
)
from repro.obs.events import BatteryDegraded, SSDFault, SyncEviction
from repro.obs.harness import TraceWorkload
from repro.sim.events import Simulation
from repro.storage.ssd import SSD, SSDFaultError

SPEC = TraceWorkload(system="viyojit", ops=400)


class TestSSDChannel:
    def test_fail_every_is_deterministic(self):
        plan = FaultPlan(ssd_rules=(SSDFaultRule(op="write", fail_every=3),))
        sim = Simulation()
        ssd = SSD()
        injector = FaultInjector(plan, sim)
        injector.attach(ssd=ssd)
        outcomes = []
        for _ in range(9):
            try:
                ssd.submit_write(sim.now, 4096)
                outcomes.append("ok")
            except SSDFaultError:
                outcomes.append("fail")
        assert outcomes == ["ok", "ok", "fail"] * 3
        assert injector.injected_failures == 3

    def test_rejected_submission_leaves_counters_untouched(self):
        plan = FaultPlan(ssd_rules=(SSDFaultRule(op="write", fail_every=1),))
        sim = Simulation()
        ssd = SSD()
        FaultInjector(plan, sim).attach(ssd=ssd)
        with pytest.raises(SSDFaultError):
            ssd.submit_write(0, 4096)
        assert ssd.stats.writes == 0
        assert ssd.stats.bytes_written == 0
        assert ssd.earliest_free_slot() == 0

    def test_delay_adds_latency(self):
        sim = Simulation()
        plain = SSD()
        delayed = SSD()
        plan = FaultPlan(
            ssd_rules=(SSDFaultRule(op="write", delay_prob=1.0, delay_ns=500_000),)
        )
        FaultInjector(plan, sim).attach(ssd=delayed)
        assert delayed.submit_write(0, 4096) == plain.submit_write(0, 4096) + 500_000

    def test_probabilistic_stream_is_seeded(self):
        def failures(seed):
            plan = FaultPlan(
                seed=seed, ssd_rules=(SSDFaultRule(op="write", fail_prob=0.3),)
            )
            sim = Simulation()
            ssd = SSD()
            injector = FaultInjector(plan, sim)
            injector.attach(ssd=ssd)
            out = []
            for index in range(200):
                try:
                    ssd.submit_write(index * 1_000, 4096)
                    out.append(0)
                except SSDFaultError:
                    out.append(1)
            return out

        assert failures(5) == failures(5)
        assert failures(5) != failures(6)

    def test_read_rules_do_not_hit_writes(self):
        plan = FaultPlan(ssd_rules=(SSDFaultRule(op="read", fail_every=1),))
        sim = Simulation()
        ssd = SSD()
        FaultInjector(plan, sim).attach(ssd=ssd)
        ssd.submit_write(0, 4096)  # must not raise
        with pytest.raises(SSDFaultError):
            ssd.submit_read(0, 4096)

    def test_attach_without_ssd_is_loud(self):
        plan = FaultPlan(ssd_rules=(SSDFaultRule(fail_every=1),))
        with pytest.raises(ValueError):
            FaultInjector(plan, Simulation()).attach(ssd=None)

    def test_detach_removes_hook(self):
        plan = FaultPlan(ssd_rules=(SSDFaultRule(op="write", fail_every=1),))
        sim = Simulation()
        ssd = SSD()
        injector = FaultInjector(plan, sim)
        injector.attach(ssd=ssd)
        injector.detach()
        ssd.submit_write(0, 4096)  # hook gone, no raise

    def test_fault_events_traced(self):
        plan = FaultPlan(
            ssd_rules=(SSDFaultRule(op="write", fail_prob=0.05),)
        )
        result = run_faulted_workload(SPEC, plan)
        assert result.injected_failures > 0
        # SSDFault events landed in the trace with kind="fail".
        bundle = build_faulted_run(SPEC, plan)
        from repro.obs.harness import apply_op, iter_workload_ops

        page_size = bundle.system.region.page_size
        for wop in iter_workload_ops(SPEC, page_size):
            apply_op(bundle.system, bundle.mapping, page_size, wop)
        faults = bundle.tracer.events_of(SSDFault)
        assert faults
        assert all(f.kind in ("fail", "delay") for f in faults)


class TestBatteryChannel:
    def test_step_degrades_and_shrinks_budget(self):
        plan = FaultPlan(
            battery_steps=(BatteryDegradationStep(at_ns=1_000_000, fraction=0.5),)
        )
        result = run_faulted_workload(SPEC, plan)
        assert result.battery_degradations == 1
        # Exactly-sized battery: half the health, half the budget.
        assert result.final_budget == SPEC.dirty_budget_pages // 2
        assert result.survived

    def test_degraded_event_traced(self):
        plan = FaultPlan(
            battery_steps=(BatteryDegradationStep(at_ns=1_000_000, fraction=0.25),)
        )
        bundle = build_faulted_run(SPEC, plan)
        from repro.obs.harness import apply_op, iter_workload_ops

        page_size = bundle.system.region.page_size
        for wop in iter_workload_ops(SPEC, page_size):
            apply_op(bundle.system, bundle.mapping, page_size, wop)
        events = bundle.tracer.events_of(BatteryDegraded)
        assert len(events) == 1
        assert events[0].fraction == 0.25
        assert events[0].health == 0.75
        assert events[0].budget == bundle.system.dirty_budget_pages

    def test_repeated_steps_keep_shrinking(self):
        plan = FaultPlan(
            battery_steps=(
                BatteryDegradationStep(at_ns=500_000, fraction=0.5),
                BatteryDegradationStep(at_ns=1_500_000, fraction=0.5),
            )
        )
        result = run_faulted_workload(SPEC, plan)
        assert result.battery_degradations == 2
        assert result.final_budget == SPEC.dirty_budget_pages // 4
        assert result.survived

    def test_degradation_below_dirty_set_drains_excess(self):
        # A brutal degradation while the dirty set is full: the runtime
        # must drain down to the new budget, keeping the invariant.
        plan = FaultPlan(
            battery_steps=(BatteryDegradationStep(at_ns=1_000_000, fraction=0.75),)
        )
        result = run_faulted_workload(SPEC, plan)
        assert result.final_budget == SPEC.dirty_budget_pages // 4
        assert result.survived
        assert result.crash.dirty_pages <= result.final_budget

    def test_attach_without_battery_is_loud(self):
        plan = FaultPlan(
            battery_steps=(BatteryDegradationStep(at_ns=0, fraction=0.1),)
        )
        with pytest.raises(ValueError):
            FaultInjector(plan, Simulation()).attach(ssd=SSD())


class TestPowerCutChannel:
    def test_cut_at_instant(self):
        plan = FaultPlan(power_cut=PowerCutPoint(at_ns=1_500_000))
        result = run_faulted_workload(SPEC, plan)
        assert result.power_cut is not None
        assert result.power_cut.at_ns == 1_500_000
        assert result.ops_applied < SPEC.ops
        assert result.survived

    def test_cut_on_event_occurrence(self):
        plan = FaultPlan(
            power_cut=PowerCutPoint(on_event="SyncEviction", occurrence=5)
        )
        bundle = build_faulted_run(SPEC, plan)
        assert isinstance(bundle.tracer, TriggerTracer)
        result = run_faulted_workload(SPEC, plan)
        assert result.power_cut is not None
        assert result.power_cut.source == "event:SyncEviction#5"
        assert result.survived

    def test_cut_instant_matches_nth_event(self):
        # The cut time equals the 5th SyncEviction's timestamp from an
        # uncut reference run: seeded determinism across fault modes.
        reference = build_faulted_run(SPEC)
        from repro.obs.harness import apply_op, iter_workload_ops

        page_size = reference.system.region.page_size
        for wop in iter_workload_ops(SPEC, page_size):
            apply_op(reference.system, reference.mapping, page_size, wop)
        evictions = reference.tracer.events_of(SyncEviction)
        assert len(evictions) >= 5
        plan = FaultPlan(
            power_cut=PowerCutPoint(on_event="SyncEviction", occurrence=5)
        )
        result = run_faulted_workload(SPEC, plan)
        assert result.power_cut is not None
        assert result.power_cut.at_ns == evictions[4].t

    def test_trigger_tracer_validates_occurrence(self):
        with pytest.raises(ValueError):
            TriggerTracer("SyncEviction", 0)

    def test_cut_recovery_reconstructs_every_page(self):
        plan = FaultPlan(power_cut=PowerCutPoint(at_ns=2_000_000))
        result = run_faulted_workload(SPEC, plan)
        assert result.power_cut is not None
        assert result.recovery.intact
        assert result.recovery.pages_checked > 0
        assert result.crash.survives


class TestDeterminism:
    def test_identical_runs_identical_results(self):
        plan = FaultPlan(
            seed=3,
            ssd_rules=(SSDFaultRule(op="write", fail_prob=0.02, delay_prob=0.05),),
            battery_steps=(BatteryDegradationStep(at_ns=1_200_000, fraction=0.3),),
        )
        a = run_faulted_workload(SPEC, plan)
        b = run_faulted_workload(SPEC, plan)
        assert a.as_dict() == b.as_dict()
