"""The batching tentpole's contract: batched execution is wall-clock-only.

``run_workload(..., execution="batched")`` must produce exactly the
per-op path's simulated results — same simulated clock, same stats,
same flush traffic, same latency histograms — for every workload and
both systems.  The monkeypatch-off chain additionally pins that the
batched path composes with the PR-4 fast-path deoptimizations: with
every substrate fast path disabled, batched and per-op still agree.
"""

from __future__ import annotations

import pytest

from repro.bench.runner import ExperimentScale, run_workload
from repro.workloads.ycsb import YCSB_WORKLOADS

from tests.perf.test_sim_invisibility import _disable_fast_paths, _snapshot

SCALE = ExperimentScale(record_count=800, operation_count=2_500)

#: YCSB-E (scans) keeps the per-op path; everything else has a fused twin.
BATCHABLE = ("YCSB-A", "YCSB-B", "YCSB-C", "YCSB-D", "YCSB-F")


@pytest.mark.parametrize("name", BATCHABLE)
@pytest.mark.parametrize("budget_fraction", [0.175, None],
                         ids=["viyojit", "nvdram"])
def test_batched_equals_per_op(name, budget_fraction):
    spec = YCSB_WORKLOADS[name]
    per_op = _snapshot(run_workload(spec, SCALE, budget_fraction))
    batched = _snapshot(
        run_workload(spec, SCALE, budget_fraction, execution="batched")
    )
    assert per_op == batched


@pytest.mark.parametrize("budget_fraction", [0.175, None],
                         ids=["viyojit", "nvdram"])
def test_batched_is_simulation_invisible_when_deoptimized(
    monkeypatch, budget_fraction
):
    spec = YCSB_WORKLOADS["YCSB-A"]
    optimized = _snapshot(
        run_workload(spec, SCALE, budget_fraction, execution="batched")
    )
    _disable_fast_paths(monkeypatch)
    deopt_batched = _snapshot(
        run_workload(spec, SCALE, budget_fraction, execution="batched")
    )
    deopt_per_op = _snapshot(run_workload(spec, SCALE, budget_fraction))
    assert optimized == deopt_batched == deopt_per_op


def test_scan_workload_falls_back_to_per_op():
    spec = YCSB_WORKLOADS["YCSB-E"]
    per_op = _snapshot(run_workload(spec, SCALE, 0.175))
    batched = _snapshot(run_workload(spec, SCALE, 0.175, execution="batched"))
    assert per_op == batched


def test_unknown_execution_mode_rejected():
    with pytest.raises(ValueError, match="unknown execution mode"):
        run_workload(YCSB_WORKLOADS["YCSB-A"], SCALE, 0.175, execution="warp")
