"""BENCH.json contract: schema, determinism, and the regression gate."""

from __future__ import annotations

import json

import pytest

from repro.perf import SCHEMA_VERSION, compare_reports, run_suite
from repro.perf.report import deterministic_view, dumps


@pytest.fixture(scope="module")
def quick_reports():
    """Two full quick-mode suite runs (module-scoped: the suite is the
    expensive part; every schema/determinism assertion shares them)."""
    return run_suite(quick=True, repeats=1), run_suite(quick=True, repeats=1)


class TestSchema:
    def test_top_level_layout(self, quick_reports):
        report, _ = quick_reports
        assert report["schema_version"] == SCHEMA_VERSION
        assert report["mode"] == "quick"
        assert report["kernel"] in ("object", "soa")
        assert set(report) == {
            "schema_version", "mode", "kernel", "micro", "macro", "wall"
        }

    def test_kernel_field_reflects_env(self, monkeypatch):
        from repro.perf.report import build_report
        from repro.mem.kernel import kernel_name

        monkeypatch.setenv("REPRO_KERNEL", "soa")
        report = build_report("quick", [], [], 1, 0.0, kernel=kernel_name())
        assert report["kernel"] == "soa"
        # The kernel is part of the deterministic view, not the wall data.
        assert '"kernel": "soa"' in deterministic_view(report)

    def test_expected_benchmarks_present(self, quick_reports):
        report, _ = quick_reports
        assert set(report["micro"]) == {
            "write_fault_path",
            "epoch_scan",
            "victim_ranking",
            "flusher_throughput",
            "tlb_hot_path",
            "compile_stream",
            "ops_roundtrip",
        }
        assert set(report["macro"]) == {
            "viyojit",
            "viyojit_batched",
            "viyojit_compiled",
            "nvdram",
            "nvdram_batched",
            "nvdram_compiled",
            "sweep_jobs1",
            "sweep_jobs2",
            "cluster_stream_generator",
            "cluster_stream_compiled",
            "scale_replay",
        }

    def test_batched_macro_sims_equal_per_op(self, quick_reports):
        report, _ = quick_reports
        assert report["macro"]["viyojit_batched"] == report["macro"]["viyojit"]
        assert report["macro"]["nvdram_batched"] == report["macro"]["nvdram"]

    def test_compiled_macro_sims_equal_batched(self, quick_reports):
        """Compiled replay is simulation-invisible in the report itself."""
        report, _ = quick_reports
        assert (
            report["macro"]["viyojit_compiled"]
            == report["macro"]["viyojit_batched"]
        )
        assert (
            report["macro"]["nvdram_compiled"]
            == report["macro"]["nvdram_batched"]
        )

    def test_cluster_stream_pair_sims_equal(self, quick_reports):
        """Vectorized routing returns the generator pass's exact counts."""
        report, _ = quick_reports
        generator = report["macro"]["cluster_stream_generator"]
        compiled = report["macro"]["cluster_stream_compiled"]
        assert generator == compiled
        assert generator["shards"] == 4
        assert sum(generator["routed_ops"]) > 0

    def test_scale_replay_recorded(self, quick_reports):
        report, _ = quick_reports
        replay = report["macro"]["scale_replay"]
        assert replay["replay"]["ops"] == replay["ops"]
        assert len(replay["stream_sha256"]) == 64

    def test_sweep_pair_agrees_on_checksum(self, quick_reports):
        report, _ = quick_reports
        one, two = (
            report["macro"]["sweep_jobs1"],
            report["macro"]["sweep_jobs2"],
        )
        assert one["sweep_checksum_sha256"] == two["sweep_checksum_sha256"]
        assert one["jobs"] == two["jobs"] == 4

    def test_speedup_ratios_recorded(self, quick_reports):
        report, _ = quick_reports
        speedups = report["wall"]["speedups"]
        assert set(speedups) == {
            "ycsb_a_batched_vs_per_op",
            "ycsb_a_nvdram_batched_vs_per_op",
            "ycsb_a_compiled_vs_batched",
            "ycsb_a_nvdram_compiled_vs_batched",
            "sweep_jobs2_vs_jobs1",
            "cluster_stream_compiled_vs_generator",
        }
        for ratio in speedups.values():
            assert ratio > 0

    def test_wall_fields_named_wall_s(self, quick_reports):
        report, _ = quick_reports
        wall = report["wall"]
        assert "generated_at_unix" in wall
        for group in ("micro", "macro"):
            for fields in wall[group].values():
                assert fields["wall_s"] > 0

    def test_sim_sections_have_no_wall_fields(self, quick_reports):
        report, _ = quick_reports
        text = deterministic_view(report)
        assert "wall_s" not in text
        assert "generated_at" not in text

    def test_dumps_round_trips(self, quick_reports):
        report, _ = quick_reports
        assert json.loads(dumps(report)) == report


class TestDeterminism:
    def test_two_runs_byte_identical_outside_wall(self, quick_reports):
        first, second = quick_reports
        assert deterministic_view(first) == deterministic_view(second)

    def test_macro_sim_matches_simulation_golden_behavior(self, quick_reports):
        report, _ = quick_reports
        viyojit = report["macro"]["viyojit"]
        assert viyojit["ops_executed"] == 4_000
        assert viyojit["stats"]["epochs"] > 0
        assert viyojit["stats"]["write_faults"] > 0


class TestRegressionGate:
    def _report(self, wall_s: float, schema: int = SCHEMA_VERSION) -> dict:
        return {
            "schema_version": schema,
            "mode": "quick",
            "kernel": "object",
            "micro": {},
            "macro": {},
            "wall": {
                "generated_at_unix": 0.0,
                "repeats": 1,
                "micro": {"bench": {"unit": "ops", "units": 1, "wall_s": wall_s,
                                    "per_sec": 1.0 / wall_s}},
                "macro": {},
            },
        }

    def test_within_limit_passes(self):
        assert compare_reports(self._report(1.5), self._report(1.0), 2.0) == []

    def test_over_limit_fails(self):
        failures = compare_reports(self._report(2.5), self._report(1.0), 2.0)
        assert len(failures) == 1
        assert "micro:bench" in failures[0]
        assert "2.50x" in failures[0]

    def test_new_benchmark_not_gated(self):
        baseline = self._report(1.0)
        baseline["wall"]["micro"] = {}
        assert compare_reports(self._report(9.9), baseline, 2.0) == []

    def test_schema_mismatch_fails(self):
        failures = compare_reports(
            self._report(1.0), self._report(1.0, schema=0), 2.0
        )
        assert failures and "schema_version" in failures[0]

    def test_bad_limit_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            compare_reports(self._report(1.0), self._report(1.0), 0.0)


class TestCLI:
    def test_perf_writes_bench_json_and_compares(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "BENCH.json"
        assert main(["perf", "--quick", "--repeats", "1",
                     "--out", str(out)]) == 0
        report = json.loads(out.read_text())
        assert report["schema_version"] == SCHEMA_VERSION
        # A generous limit keeps this assertion about plumbing, not about
        # the noise floor of the machine running the tests.
        assert main(["perf", "--quick", "--repeats", "1",
                     "--against", str(out), "--max-regression", "50"]) == 0
        captured = capsys.readouterr()
        assert "no wall-clock regression" in captured.out

    def test_against_stale_schema_exits_3(self, tmp_path, capsys):
        """A baseline from an older schema fails fast with its own code."""
        from repro.cli import main

        stale = tmp_path / "stale.json"
        stale.write_text(json.dumps({"schema_version": SCHEMA_VERSION - 1}))
        assert main(["perf", "--quick", "--repeats", "1",
                     "--against", str(stale)]) == 3
        captured = capsys.readouterr()
        assert "schema mismatch: regenerate baseline" in captured.err
