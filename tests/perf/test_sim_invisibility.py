"""The tentpole's core contract: fast paths change wall time ONLY.

Every hot-path optimization in this PR — the TLB hit/hit-dirty probes,
the event-queue next-due lower bound, and the vectorized (order-
insensitive) victim-candidate materialization — must be invisible to the
simulation: same simulated clocks, same stats, same flush traffic, for
both systems.  This test switches all of them off via monkeypatching and
replays the same macro workload; every simulated quantity must match the
optimized run exactly.
"""

from __future__ import annotations

import pytest

from repro.bench.runner import ExperimentScale, run_workload
from repro.workloads.ycsb import YCSB_A

SCALE = ExperimentScale(record_count=800, operation_count=2_500)


def _snapshot(result) -> dict:
    out = {
        "ops": result.ops_executed,
        "elapsed_ns": result.elapsed_ns,
        "ssd_bytes": result.ssd_bytes_written,
        "stats": result.viyojit_stats,
    }
    for kind, summary in sorted(result.latency.items()):
        out[f"latency.{kind}"] = (summary.count, summary.avg_ms, summary.p99_ms)
    return out


def _disable_fast_paths(monkeypatch) -> None:
    from repro.core import policies
    from repro.mem.soa import SoATLB
    from repro.mem.tlb import TLB
    from repro.sim.events import EventQueue

    # TLB probes always miss: every access takes the canonical MMU path.
    # Both kernels' TLBs are patched so the chain deoptimizes whichever
    # one REPRO_KERNEL selected.
    for tlb_cls in (TLB, SoATLB):
        monkeypatch.setattr(tlb_cls, "hit", lambda self, pfn: False)
        monkeypatch.setattr(tlb_cls, "hit_dirty", lambda self, pfn: False)
    # The next-due bound always demands a drain attempt.
    # ``next_due_at`` is normally a plain instance attribute; installing
    # a class-level data descriptor overrides it for every queue.
    monkeypatch.setattr(
        EventQueue,
        "next_due_at",
        property(lambda self: 0, lambda self, value: None),
        raising=False,
    )
    # Victim candidates go back to legacy set-iteration materialization.
    for cls in (
        policies.VictimPolicy,
        policies.LeastRecentlyUpdatedPolicy,
        policies.LeastFrequentlyUpdatedPolicy,
        policies.MostRecentlyUpdatedPolicy,
    ):
        monkeypatch.setattr(cls, "order_insensitive", False)


@pytest.mark.parametrize("budget_fraction", [0.175, None],
                         ids=["viyojit", "nvdram"])
def test_fast_paths_are_simulation_invisible(monkeypatch, budget_fraction):
    optimized = _snapshot(run_workload(YCSB_A, SCALE, budget_fraction))
    _disable_fast_paths(monkeypatch)
    deoptimized = _snapshot(run_workload(YCSB_A, SCALE, budget_fraction))
    assert optimized == deoptimized


@pytest.mark.parametrize("kernel", ["object", "soa"])
@pytest.mark.parametrize("budget_fraction", [0.175, None],
                         ids=["viyojit", "nvdram"])
def test_compiled_replay_is_simulation_invisible(
    monkeypatch, budget_fraction, kernel
):
    """A compiled stream through the full deopt chain changes nothing.

    The strongest form of the invariant: per-op generator execution on
    the optimized simulator must match compiled-stream batched execution
    with every fast path switched off, under either memory kernel.
    """
    from repro.workloads.compiled import compile_workload

    monkeypatch.setenv("REPRO_KERNEL", kernel)
    reference = _snapshot(
        run_workload(YCSB_A, SCALE, budget_fraction, execution="per-op")
    )
    stream = compile_workload(
        YCSB_A,
        SCALE.record_count,
        SCALE.operation_count,
        value_size=SCALE.value_size,
        theta=SCALE.zipf_theta,
        seed=SCALE.seed,
    )
    _disable_fast_paths(monkeypatch)
    compiled = _snapshot(
        run_workload(
            YCSB_A,
            SCALE,
            budget_fraction,
            execution="batched",
            compiled=stream,
        )
    )
    assert compiled == reference
